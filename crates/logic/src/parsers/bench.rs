//! ISCAS-85 `.bench` parser.
//!
//! The format used by the benchmark circuits of the paper's evaluation:
//!
//! ```text
//! # c17
//! INPUT(1)
//! OUTPUT(22)
//! 10 = NAND(1, 3)
//! 22 = NAND(10, 16)
//! ```
//!
//! Definitions may appear in any order; the parser resolves forward
//! references and rejects combinational cycles. Sequential elements
//! (`DFF`) are rejected — the paper treats purely combinational logic.
//!
//! Two `@tbf` comment pragmas (see `FORMATS.md`) make the format
//! self-contained for round-tripping: `# @tbf delay <min> <max>` on a
//! gate line pins that gate's delay bounds (scaled fixed-point
//! integers, overriding the delay callback), and a standalone
//! `# @tbf output <name> <driver>` line re-binds a declared output to a
//! differently-named driver node. Plain comments are ignored as always.

use std::collections::HashMap;

use super::{
    check_inputs_first, check_writable_name, delay_pragma, parse_delay_pragma, parse_output_pragma,
    split_pragma,
};
use crate::delay::DelayBounds;
use crate::gate::GateKind;
use crate::netlist::{Netlist, NetlistError, NodeId};

/// Parses `.bench` text into a [`Netlist`], assigning each gate delay
/// bounds via `delay_fn(kind, fanin_count)`.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for malformed lines, unknown gate
/// types, `DFF`s, cycles or dangling references, and the builder's own
/// errors for arity/name problems.
///
/// # Example
///
/// ```
/// use tbf_logic::parsers::{bench::parse_bench, unit_delays};
///
/// let src = "
/// INPUT(a)
/// INPUT(b)
/// OUTPUT(y)
/// y = NAND(a, b)
/// ";
/// let n = parse_bench(src, unit_delays)?;
/// assert_eq!(n.inputs().len(), 2);
/// assert_eq!(n.gate_count(), 1);
/// assert_eq!(n.evaluate_outputs(&[true, true]), vec![false]);
/// # Ok::<(), tbf_logic::NetlistError>(())
/// ```
pub fn parse_bench(
    text: &str,
    mut delay_fn: impl FnMut(GateKind, usize) -> DelayBounds,
) -> Result<Netlist, NetlistError> {
    struct Def {
        kind: GateKind,
        fanins: Vec<String>,
        delay: Option<DelayBounds>,
        line: usize,
    }
    let mut inputs: Vec<(String, usize)> = Vec::new();
    let mut outputs: Vec<(String, usize)> = Vec::new();
    let mut defs: HashMap<String, Def> = HashMap::new();
    let mut order: Vec<String> = Vec::new();
    // `@tbf output` pragma re-bindings: output name → (driver, line).
    let mut aliases: HashMap<String, (String, usize)> = HashMap::new();
    let mut alias_order: Vec<(String, usize)> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let (code, pragma) = split_pragma(raw);
        let line = code.trim();
        let err = |message: String| NetlistError::Parse {
            line: lineno,
            message,
        };
        if line.is_empty() {
            if let Some(body) = pragma {
                let (name, driver) = parse_output_pragma(body, lineno)?
                    .ok_or_else(|| err(format!("pragma `{body}` must annotate a gate line")))?;
                if aliases.insert(name.clone(), (driver, lineno)).is_some() {
                    return Err(err(format!("duplicate output pragma for `{name}`")));
                }
                alias_order.push((name, lineno));
            }
            continue;
        }
        // A pragma attached to a non-empty line must be a delay pragma on
        // a gate definition; stash it for the definition branch below.
        let mut pragma_delay = None;
        if let Some(body) = pragma {
            pragma_delay = parse_delay_pragma(body, lineno)?;
            if pragma_delay.is_none() {
                return Err(err(format!(
                    "only `@tbf delay` pragmas may annotate a line, got `{body}`"
                )));
            }
            if !line.contains('=') {
                return Err(err("delay pragma must annotate a gate definition".into()));
            }
        }
        if let Some(rest) = strip_directive(line, "INPUT") {
            inputs.push((rest.map_err(&err)?, lineno));
        } else if let Some(rest) = strip_directive(line, "OUTPUT") {
            let name = rest.map_err(&err)?;
            if outputs.iter().any(|(n, _)| *n == name) {
                return Err(err(format!("duplicate OUTPUT `{name}`")));
            }
            outputs.push((name, lineno));
        } else if let Some((lhs, rhs)) = line.split_once('=') {
            let name = lhs.trim().to_owned();
            let rhs = rhs.trim();
            let open = rhs
                .find('(')
                .ok_or_else(|| err(format!("expected GATE(...) after `=`, got `{rhs}`")))?;
            if !rhs.ends_with(')') {
                return Err(err(format!("missing `)` in `{rhs}`")));
            }
            let kind_str = rhs[..open].trim().to_ascii_uppercase();
            let kind = match kind_str.as_str() {
                "AND" => GateKind::And,
                "OR" => GateKind::Or,
                "NAND" => GateKind::Nand,
                "NOR" => GateKind::Nor,
                "XOR" => GateKind::Xor,
                "XNOR" => GateKind::Xnor,
                "NOT" | "INV" => GateKind::Not,
                "BUF" | "BUFF" => GateKind::Buf,
                "MAJ" => GateKind::Maj,
                "MUX" => GateKind::Mux,
                "DFF" => {
                    return Err(err("sequential element DFF not supported".into()));
                }
                other => return Err(err(format!("unknown gate type `{other}`"))),
            };
            let fanins: Vec<String> = rhs[open + 1..rhs.len() - 1]
                .split(',')
                .map(|s| s.trim().to_owned())
                .filter(|s| !s.is_empty())
                .collect();
            if defs.contains_key(&name) {
                return Err(NetlistError::DuplicateName(name));
            }
            defs.insert(
                name.clone(),
                Def {
                    kind,
                    fanins,
                    delay: pragma_delay,
                    line: lineno,
                },
            );
            order.push(name);
        } else {
            return Err(err(format!("unrecognized line `{line}`")));
        }
    }

    // A name declared INPUT and also defined as a gate would silently
    // shadow the definition during resolution; reject it up front.
    for (name, line) in &inputs {
        if let Some(def) = defs.get(name) {
            return Err(NetlistError::Parse {
                line: def.line.max(*line),
                message: format!("`{name}` is declared INPUT and defined as a gate"),
            });
        }
    }

    // Resolve in dependency order with an explicit DFS (handles forward
    // references and reports cycles).
    let mut builder = Netlist::builder();
    let mut resolved: HashMap<String, NodeId> = HashMap::new();
    for (name, line) in &inputs {
        let id = builder.try_input(name).map_err(|e| match e {
            NetlistError::DuplicateName(n) => NetlistError::Parse {
                line: *line,
                message: format!("duplicate INPUT `{n}`"),
            },
            other => other,
        })?;
        resolved.insert(name.clone(), id);
    }

    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        Visiting,
        Done,
    }
    let mut marks: HashMap<String, Mark> = HashMap::new();
    // Iterative DFS: (name, next_fanin_to_process).
    for root in &order {
        if marks.get(root) == Some(&Mark::Done) {
            continue;
        }
        let mut stack: Vec<(String, usize)> = vec![(root.clone(), 0)];
        while let Some((name, idx)) = stack.pop() {
            if resolved.contains_key(&name) {
                continue;
            }
            let def = defs
                .get(&name)
                .ok_or_else(|| NetlistError::UnknownNode(name.clone()))?;
            if idx == 0 {
                if marks.get(&name) == Some(&Mark::Visiting) {
                    return Err(NetlistError::Parse {
                        line: def.line,
                        message: format!("combinational cycle through `{name}`"),
                    });
                }
                marks.insert(name.clone(), Mark::Visiting);
            }
            if let Some(fanin) = def.fanins.get(idx) {
                let fanin = fanin.clone();
                stack.push((name, idx + 1));
                if !resolved.contains_key(&fanin) {
                    if marks.get(&fanin) == Some(&Mark::Visiting) {
                        let line = defs.get(&fanin).map(|d| d.line).unwrap_or(def.line);
                        return Err(NetlistError::Parse {
                            line,
                            message: format!("combinational cycle through `{fanin}`"),
                        });
                    }
                    stack.push((fanin, 0));
                }
            } else {
                // All fanins resolved: emit the gate.
                let fanin_ids: Vec<NodeId> = def
                    .fanins
                    .iter()
                    .map(|f| {
                        resolved
                            .get(f)
                            .copied()
                            .ok_or_else(|| NetlistError::UnknownNode(f.clone()))
                    })
                    .collect::<Result<_, _>>()?;
                let delay = def
                    .delay
                    .unwrap_or_else(|| delay_fn(def.kind, fanin_ids.len()));
                let id = builder.gate(def.kind, &name, fanin_ids, delay)?;
                resolved.insert(name.clone(), id);
                marks.insert(name, Mark::Done);
            }
        }
    }

    // Every output pragma must re-bind a declared output.
    for (name, line) in &alias_order {
        if !outputs.iter().any(|(n, _)| n == name) {
            return Err(NetlistError::Parse {
                line: *line,
                message: format!("output pragma for undeclared OUTPUT `{name}`"),
            });
        }
    }
    for (name, line) in &outputs {
        let driver = aliases.get(name).map_or(name.as_str(), |(d, _)| d.as_str());
        let id = resolved
            .get(driver)
            .copied()
            .ok_or_else(|| NetlistError::UnknownNode(driver.to_owned()))?;
        builder.try_output(name, id).map_err(|e| match e {
            NetlistError::DuplicateName(n) => NetlistError::Parse {
                line: *line,
                message: format!("duplicate OUTPUT `{n}`"),
            },
            other => other,
        })?;
    }
    builder.finish()
}

/// Recognizes `KEYWORD(name)` directives. A line merely *starting* with
/// the keyword is not a directive — `output22 = AND(a, b)` is a gate
/// named `output22`, so anything without a `(` right after the keyword
/// (or containing an `=`) falls through to the definition branch.
fn strip_directive(line: &str, keyword: &str) -> Option<Result<String, String>> {
    let upper = line.to_ascii_uppercase();
    if !upper.starts_with(keyword) {
        return None;
    }
    let rest = line[keyword.len()..].trim();
    if !rest.starts_with('(') || line.contains('=') {
        return None;
    }
    if let Some(inner) = rest.strip_prefix('(').and_then(|r| r.strip_suffix(')')) {
        let name = inner.trim();
        if name.is_empty() {
            Some(Err(format!("empty {keyword} directive: `{line}`")))
        } else {
            Some(Ok(name.to_owned()))
        }
    } else {
        Some(Err(format!("malformed {keyword} directive: `{line}`")))
    }
}

/// Serializes a netlist back to self-contained `.bench` text.
///
/// Gate kinds map to the standard `.bench` mnemonics (plus the `MAJ` and
/// `MUX` extensions this parser reads back); constants are not
/// representable in `.bench` and are rejected.
///
/// The output is canonical and round-trips *exactly*: every gate line
/// carries a `# @tbf delay` pragma pinning its scaled delay bounds, an
/// output whose name differs from its driver gets a `# @tbf output`
/// pragma (no alias buffer is inserted), and gates are emitted in node
/// order with all inputs first — so `parse_bench(&write_bench(n)?, _)`
/// reproduces `n`'s `structural_signature` and every `cone_signature`
/// byte for byte, regardless of the delay callback used on reparse.
///
/// # Errors
///
/// Returns [`NetlistError::BadArity`] if the netlist contains a constant
/// node (no `.bench` encoding exists), and [`NetlistError::Unwritable`]
/// if a name cannot survive reparse as a `.bench` token or the inputs do
/// not occupy the first node ids.
///
/// # Example
///
/// ```
/// use tbf_logic::parsers::bench::{parse_bench, write_bench};
/// use tbf_logic::parsers::{mcnc_like_delays, unit_delays};
///
/// let src = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n";
/// let n = parse_bench(src, unit_delays)?;
/// // The emitted delay pragmas override the reparse callback, so even a
/// // different delay assignment reproduces the signature exactly.
/// let round = parse_bench(&write_bench(&n)?, mcnc_like_delays)?;
/// assert_eq!(round.structural_signature(), n.structural_signature());
/// assert_eq!(round.evaluate_outputs(&[true]), vec![false]);
/// # Ok::<(), tbf_logic::NetlistError>(())
/// ```
pub fn write_bench(netlist: &Netlist) -> Result<String, NetlistError> {
    use std::fmt::Write as _;
    check_inputs_first(netlist)?;
    let mut out = String::new();
    for &id in netlist.inputs() {
        let name = netlist.node(id).name();
        check_writable_name(name, ".bench")?;
        let _ = writeln!(out, "INPUT({name})");
    }
    for (name, id) in netlist.outputs() {
        check_writable_name(name, ".bench")?;
        let _ = writeln!(out, "OUTPUT({name})");
        let driver = netlist.node(*id).name();
        if driver != name {
            let _ = writeln!(out, "# @tbf output {name} {driver}");
        }
    }
    for (_, node) in netlist.nodes() {
        let mnemonic = match node.kind() {
            GateKind::Input => continue,
            GateKind::And => "AND",
            GateKind::Or => "OR",
            GateKind::Nand => "NAND",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
            GateKind::Not => "NOT",
            GateKind::Buf => "BUFF",
            GateKind::Maj => "MAJ",
            GateKind::Mux => "MUX",
            kind @ (GateKind::Const0 | GateKind::Const1) => {
                return Err(NetlistError::BadArity {
                    name: node.name().to_owned(),
                    kind,
                    arity: 0,
                })
            }
        };
        check_writable_name(node.name(), ".bench")?;
        let fanins: Vec<&str> = node
            .fanins()
            .iter()
            .map(|f| netlist.node(*f).name())
            .collect();
        let _ = writeln!(
            out,
            "{} = {mnemonic}({}) {}",
            node.name(),
            fanins.join(", "),
            delay_pragma(node.delay())
        );
    }
    Ok(out)
}

/// The genuine ISCAS-85 `c17` benchmark (6 NAND gates), embedded for
/// out-of-the-box use.
pub const C17_BENCH: &str = "\
# c17 — ISCAS-85 benchmark
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";

/// Parses the embedded [`C17_BENCH`] with the given delay assignment.
///
/// # Panics
///
/// Never — the embedded text is valid; errors from user delay callbacks
/// cannot occur (the callback is infallible).
pub fn c17(delay_fn: impl FnMut(GateKind, usize) -> DelayBounds) -> Netlist {
    parse_bench(C17_BENCH, delay_fn).expect("embedded c17 is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parsers::unit_delays;
    use crate::{Netlist, Time};

    #[test]
    fn parses_c17() {
        let n = c17(unit_delays);
        assert_eq!(n.inputs().len(), 5);
        assert_eq!(n.outputs().len(), 2);
        assert_eq!(n.gate_count(), 6);
        assert_eq!(n.topological_delay(), Time::from_int(3));
        // Spot-check function: inputs (1,2,3,6,7) all true.
        // 10 = !(1·3) = 0; 11 = !(3·6) = 0; 16 = !(2·11) = 1;
        // 19 = !(11·7) = 1; 22 = !(10·16) = 1; 23 = !(16·19) = 0.
        assert_eq!(n.evaluate_outputs(&[true; 5]), vec![true, false]);
    }

    #[test]
    fn forward_references_resolve() {
        let src = "
OUTPUT(y)
y = AND(g, a)
g = NOT(a)
INPUT(a)
";
        let n = parse_bench(src, unit_delays).unwrap();
        assert_eq!(n.gate_count(), 2);
        // y = !a · a = 0 always.
        assert_eq!(n.evaluate_outputs(&[true]), vec![false]);
        assert_eq!(n.evaluate_outputs(&[false]), vec![false]);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let src = "
# header comment

INPUT(a)  # trailing comment
OUTPUT(y)
y = BUFF(a)
";
        let n = parse_bench(src, unit_delays).unwrap();
        assert_eq!(n.gate_count(), 1);
    }

    #[test]
    fn cycle_detected() {
        let src = "
INPUT(a)
OUTPUT(y)
y = AND(a, z)
z = NOT(y)
";
        let err = parse_bench(src, unit_delays).unwrap_err();
        assert!(err.to_string().contains("cycle"), "{err}");
    }

    #[test]
    fn dff_rejected() {
        let src = "
INPUT(a)
OUTPUT(q)
q = DFF(a)
";
        let err = parse_bench(src, unit_delays).unwrap_err();
        assert!(err.to_string().contains("DFF"), "{err}");
    }

    #[test]
    fn unknown_gate_rejected() {
        let err = parse_bench("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n", unit_delays).unwrap_err();
        assert!(err.to_string().contains("FROB"), "{err}");
    }

    #[test]
    fn dangling_output_rejected() {
        let err = parse_bench("INPUT(a)\nOUTPUT(nope)\n", unit_delays).unwrap_err();
        assert_eq!(err, NetlistError::UnknownNode("nope".into()));
    }

    #[test]
    fn dangling_fanin_rejected() {
        let err = parse_bench("INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n", unit_delays).unwrap_err();
        assert!(matches!(err, NetlistError::UnknownNode(n) if n == "ghost"));
    }

    #[test]
    fn duplicate_definition_rejected() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUFF(a)\n";
        let err = parse_bench(src, unit_delays).unwrap_err();
        assert_eq!(err, NetlistError::DuplicateName("y".into()));
    }

    #[test]
    fn malformed_lines_report_position() {
        let err = parse_bench("INPUT(a)\ngibberish here\n", unit_delays).unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 2, .. }), "{err}");
        let err2 = parse_bench("INPUT(a)\nOUTPUT(y)\ny = AND(a\n", unit_delays).unwrap_err();
        assert!(err2.to_string().contains("missing"), "{err2}");
    }

    #[test]
    fn hostile_inputs_yield_typed_errors() {
        // (source, substring the error must mention) — every case must
        // fail with a typed `NetlistError`, never a panic or a silently
        // wrong netlist.
        let cases: &[(&str, &str)] = &[
            (
                "INPUT(a)\nOUTPUT(y)\nOUTPUT(y)\ny = NOT(a)\n",
                "duplicate OUTPUT",
            ),
            (
                "INPUT(a)\nINPUT(a)\nOUTPUT(y)\ny = NOT(a)\n",
                "duplicate INPUT",
            ),
            ("INPUT(a)\na = NOT(a)\nOUTPUT(a)\n", "declared INPUT"),
            ("OUTPUT(y)\ny = NOT(b)\nINPUT(y)\n", "declared INPUT"),
            ("INPUT()\nOUTPUT(y)\ny = NOT(a)\n", "empty INPUT"),
            ("INPUT(a)\nOUTPUT()\n", "empty OUTPUT"),
            ("INPUT(a)\nINPUT\nOUTPUT(y)\ny = NOT(a)\n", "unrecognized"),
            ("INPUT(a)\nOUTPUT(y)\ny = AND a, b)\n", "expected GATE"),
        ];
        for (src, needle) in cases {
            let err = parse_bench(src, unit_delays).expect_err(src);
            assert!(
                err.to_string().contains(needle),
                "source {src:?}: expected error mentioning {needle:?}, got `{err}`"
            );
        }
    }

    #[test]
    fn directive_errors_carry_line_numbers() {
        let err = parse_bench("INPUT(a)\nINPUT(\nOUTPUT(y)\n", unit_delays).unwrap_err();
        assert!(
            matches!(err, NetlistError::Parse { line: 2, .. }),
            "{err:?}"
        );
        let err =
            parse_bench("INPUT(a)\nOUTPUT(y)\nOUTPUT(y)\ny = NOT(a)\n", unit_delays).unwrap_err();
        assert!(
            matches!(err, NetlistError::Parse { line: 3, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn gate_names_starting_with_directive_keywords_parse() {
        // `output22` is a gate name, not a malformed OUTPUT directive.
        let src = "INPUT(a)\nOUTPUT(output22)\noutput22 = NOT(a)\ninput9 = BUFF(a)\n";
        let n = parse_bench(src, unit_delays).unwrap();
        assert_eq!(n.evaluate_outputs(&[true]), vec![false]);
    }

    #[test]
    fn output_may_alias_an_input() {
        let src = "INPUT(a)\nOUTPUT(a)\nOUTPUT(y)\ny = NOT(a)\n";
        let n = parse_bench(src, unit_delays).unwrap();
        assert_eq!(n.outputs().len(), 2);
        assert_eq!(n.evaluate_outputs(&[true]), vec![true, false]);
        assert_eq!(n.evaluate_outputs(&[false]), vec![false, true]);
    }

    #[test]
    fn crlf_and_trailing_whitespace_accepted() {
        let src = "INPUT(a)\r\nINPUT(b)  \r\nOUTPUT(y)\t\r\ny = NAND(a, b)   \r\n";
        let n = parse_bench(src, unit_delays).unwrap();
        assert_eq!(n.inputs().len(), 2);
        assert_eq!(n.evaluate_outputs(&[true, true]), vec![false]);
    }

    #[test]
    fn write_bench_round_trips_c17() {
        let n = c17(unit_delays);
        let text = write_bench(&n).unwrap();
        let round = parse_bench(&text, unit_delays).unwrap();
        assert_eq!(round.gate_count(), n.gate_count());
        assert_eq!(round.inputs().len(), n.inputs().len());
        assert_eq!(round.structural_signature(), n.structural_signature());
        for bits in 0..32u32 {
            let a: Vec<bool> = (0..5).map(|i| (bits >> i) & 1 == 1).collect();
            assert_eq!(round.evaluate_outputs(&a), n.evaluate_outputs(&a));
        }
    }

    #[test]
    fn write_bench_round_trips_generators() {
        use crate::generators::adders::paper_bypass_adder;
        let n = paper_bypass_adder();
        let text = write_bench(&n).unwrap();
        // The `cout` output aliases driver `g5` via an output pragma, so
        // no extra buffer appears and the signature is preserved even
        // under a different reparse delay callback.
        let round = parse_bench(&text, crate::parsers::mcnc_like_delays).unwrap();
        assert_eq!(round.gate_count(), n.gate_count());
        assert_eq!(round.structural_signature(), n.structural_signature());
        for (i, _) in n.outputs().iter().enumerate() {
            assert_eq!(round.cone_signature(i), n.cone_signature(i));
        }
        for bits in 0..512u32 {
            let a: Vec<bool> = (0..9).map(|i| (bits >> i) & 1 == 1).collect();
            assert_eq!(round.evaluate_outputs(&a), n.evaluate_outputs(&a));
        }
    }

    #[test]
    fn delay_pragma_overrides_callback() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = NOT(a) # @tbf delay 9000 12500\n";
        let n = parse_bench(src, unit_delays).unwrap();
        let y = n.outputs()[0].1;
        assert_eq!(n.node(y).delay().min.scaled(), 9000);
        assert_eq!(n.node(y).delay().max.scaled(), 12500);
    }

    #[test]
    fn pragma_errors_are_typed() {
        let cases: &[(&str, &str)] = &[
            (
                "INPUT(a)\nOUTPUT(y)\ny = NOT(a) # @tbf delay 5\n",
                "delay pragma",
            ),
            (
                "INPUT(a)\nOUTPUT(y)\ny = NOT(a) # @tbf delay 9 5\n",
                "invalid delay pragma",
            ),
            (
                "INPUT(a)\nOUTPUT(y)\ny = NOT(a) # @tbf delay x y\n",
                "delay pragma",
            ),
            (
                "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n# @tbf output y\n",
                "output pragma",
            ),
            (
                "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n# @tbf output z y\n",
                "undeclared OUTPUT",
            ),
            (
                "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n# @tbf frobnicate\n",
                "pragma",
            ),
            (
                "INPUT(a) # @tbf delay 1 2\nOUTPUT(y)\ny = NOT(a)\n",
                "gate definition",
            ),
            (
                "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n# @tbf output y a\n# @tbf output y a\n",
                "duplicate output pragma",
            ),
        ];
        for (src, needle) in cases {
            let err = parse_bench(src, unit_delays).expect_err(src);
            assert!(
                err.to_string().contains(needle),
                "source {src:?}: expected error mentioning {needle:?}, got `{err}`"
            );
        }
    }

    #[test]
    fn plain_comments_with_at_signs_are_not_pragmas() {
        let src = "INPUT(a) # written by @tbf-tools\nOUTPUT(y)\ny = NOT(a) # @tbfdelay 1 2\n";
        let n = parse_bench(src, unit_delays).unwrap();
        assert_eq!(n.gate_count(), 1);
    }

    #[test]
    fn write_bench_rejects_unwritable_names() {
        let mut b = Netlist::builder();
        let x = b.input("a b");
        let y = b
            .gate(GateKind::Not, "y", vec![x], unit_delays(GateKind::Not, 1))
            .unwrap();
        b.output("y", y);
        let n = b.finish().unwrap();
        assert!(matches!(
            write_bench(&n).unwrap_err(),
            NetlistError::Unwritable { .. }
        ));
    }

    #[test]
    fn write_bench_rejects_constants() {
        let mut b = Netlist::builder();
        let _x = b.input("x");
        let c = b
            .gate(GateKind::Const1, "one", vec![], crate::DelayBounds::ZERO)
            .unwrap();
        b.output("y", c);
        let n = b.finish().unwrap();
        assert!(write_bench(&n).is_err());
    }

    #[test]
    fn delay_fn_receives_kind_and_arity() {
        let mut seen = Vec::new();
        let _ = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n",
            |kind, arity| {
                seen.push((kind, arity));
                unit_delays(kind, arity)
            },
        )
        .unwrap();
        assert_eq!(seen, vec![(GateKind::Nand, 2)]);
    }
}
