//! AIGER and-inverter-graph reader (ASCII `aag` and binary `aig`).
//!
//! AIGER encodes a combinational (or sequential) circuit as an
//! and-inverter graph: variables are numbered `1..=M`, literal `2v`
//! means variable `v`, literal `2v+1` its negation, and literals `0`/`1`
//! the constants. The ASCII header is `aag M I L O A` followed by one
//! line per input literal, latch, output literal and AND definition
//! (`lhs rhs0 rhs1`); the binary format (`aig M I L O A`) makes inputs
//! implicit and delta-compresses each AND as two LEB128 varints
//! (`lhs − rhs0`, `rhs0 − rhs1`) with `lhs` implied by position. An
//! optional symbol table (`i0 name`, `o2 name`, …) and a comment section
//! after a lone `c` close the file.
//!
//! This reader is combinational-only (`L > 0` is rejected), materializes
//! one shared [`GateKind::Not`] node per negated literal, and assigns
//! delays via the callback (AIGER carries no timing data). There is no
//! AIGER writer: the format cannot carry delays, so it cannot honor the
//! exact round-trip guarantee the `.bench`/BLIF writers provide.

use std::collections::HashMap;

use crate::delay::DelayBounds;
use crate::gate::GateKind;
use crate::netlist::{Netlist, NetlistBuilder, NetlistError, NodeId};

/// Variable-count cap: headers promising more variables than any real
/// benchmark carries are rejected before any allocation happens, so a
/// hostile 30-byte file cannot request gigabytes of nodes.
const MAX_VARS: u64 = 1 << 24;

struct AndDef {
    rhs0: u64,
    rhs1: u64,
}

/// Line-oriented cursor over the byte stream; AIGER mixes ASCII lines
/// with a raw binary AND section, so this tracks both.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn err(&self, message: String) -> NetlistError {
        NetlistError::Parse {
            line: self.line,
            message,
        }
    }

    /// Reads one `\n`-terminated ASCII line (CR tolerated), or `None` at
    /// end of input.
    fn read_line(&mut self) -> Result<Option<&'a str>, NetlistError> {
        if self.pos >= self.bytes.len() {
            return Ok(None);
        }
        self.line += 1;
        let rest = &self.bytes[self.pos..];
        let end = rest.iter().position(|&b| b == b'\n').unwrap_or(rest.len());
        self.pos += end + 1;
        let line = std::str::from_utf8(&rest[..end])
            .map_err(|_| self.err("non-UTF-8 text line".into()))?;
        Ok(Some(line.strip_suffix('\r').unwrap_or(line)))
    }

    fn expect_line(&mut self, what: &str) -> Result<&'a str, NetlistError> {
        self.read_line()?
            .ok_or_else(|| self.err(format!("unexpected end of file, expected {what}")))
    }

    /// Decodes one LEB128 varint from the binary AND section.
    fn read_varint(&mut self) -> Result<u64, NetlistError> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| self.err("truncated binary AND section".into()))?;
            self.pos += 1;
            if shift >= 63 && byte > 1 {
                return Err(self.err("varint overflows 64 bits".into()));
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }
}

fn parse_literal(tok: &str, cursor: &Cursor<'_>, max_var: u64) -> Result<u64, NetlistError> {
    let lit: u64 = tok
        .parse()
        .map_err(|_| cursor.err(format!("bad literal `{tok}`")))?;
    if lit / 2 > max_var {
        return Err(cursor.err(format!("literal {lit} exceeds header variable count")));
    }
    Ok(lit)
}

/// Parses AIGER bytes (sniffing ASCII `aag` vs binary `aig` from the
/// magic) into a [`Netlist`], assigning gate delays via
/// `delay_fn(kind, fanin_count)` — negations become [`GateKind::Not`]
/// nodes, conjunctions [`GateKind::And`] nodes.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for malformed headers, latches
/// (`L > 0`), out-of-range or redefined literals, truncated binary
/// sections, combinational cycles and malformed symbol tables, and
/// [`NetlistError::DuplicateName`] when symbol names collide.
///
/// # Example
///
/// ```
/// use tbf_logic::parsers::{aiger::parse_aiger, unit_delays};
///
/// // o = a AND NOT b, with named symbols.
/// let src = "aag 3 2 0 1 1\n2\n4\n6\n6 2 5\ni0 a\ni1 b\no0 o\n";
/// let n = parse_aiger(src.as_bytes(), unit_delays)?;
/// assert_eq!(n.inputs().len(), 2);
/// assert_eq!(n.evaluate_outputs(&[true, false]), vec![true]);
/// assert_eq!(n.evaluate_outputs(&[true, true]), vec![false]);
/// # Ok::<(), tbf_logic::NetlistError>(())
/// ```
pub fn parse_aiger(
    bytes: &[u8],
    mut delay_fn: impl FnMut(GateKind, usize) -> DelayBounds,
) -> Result<Netlist, NetlistError> {
    let mut cursor = Cursor {
        bytes,
        pos: 0,
        line: 0,
    };
    let header = cursor.expect_line("an AIGER header")?;
    let toks: Vec<&str> = header.split_whitespace().collect();
    let (&magic, counts) = toks
        .split_first()
        .ok_or_else(|| cursor.err("empty header".into()))?;
    let binary = match magic {
        "aag" => false,
        "aig" => true,
        other => return Err(cursor.err(format!("bad magic `{other}`, expected `aag` or `aig`"))),
    };
    if counts.len() < 5 {
        return Err(cursor.err(format!(
            "header needs `M I L O A`, got {} fields",
            counts.len()
        )));
    }
    let mut nums = [0u64; 5];
    for (slot, tok) in nums.iter_mut().zip(counts) {
        *slot = tok
            .parse()
            .map_err(|_| cursor.err(format!("bad header count `{tok}`")))?;
    }
    // AIGER 1.9 extensions (B C J F) are fine when zero.
    for extra in &counts[5..] {
        if extra.parse::<u64>() != Ok(0) {
            return Err(cursor.err(format!("unsupported nonzero extension count `{extra}`")));
        }
    }
    let [max_var, n_inputs, n_latches, n_outputs, n_ands] = nums;
    if n_latches > 0 {
        return Err(cursor.err(format!(
            "{n_latches} latches present; only combinational AIGs are supported"
        )));
    }
    if max_var > MAX_VARS {
        return Err(cursor.err(format!(
            "header promises {max_var} variables (cap {MAX_VARS})"
        )));
    }
    match n_inputs.checked_add(n_ands) {
        Some(used) if used <= max_var => {}
        _ => {
            return Err(cursor.err(format!(
                "header counts inconsistent: I={n_inputs} + A={n_ands} > M={max_var}"
            )))
        }
    }

    // Input variables: explicit literal lines in ASCII, implicit 2..2I in
    // binary.
    let mut input_vars: Vec<u64> = Vec::new();
    if binary {
        input_vars.extend(1..=n_inputs);
    } else {
        let mut seen = HashMap::new();
        for i in 0..n_inputs {
            let line = cursor.expect_line("an input literal")?;
            let lit = parse_literal(line.trim(), &cursor, max_var)?;
            if lit < 2 || lit % 2 != 0 {
                return Err(cursor.err(format!("input literal {lit} must be even and nonzero")));
            }
            if seen.insert(lit, i).is_some() {
                return Err(cursor.err(format!("input literal {lit} defined twice")));
            }
            input_vars.push(lit / 2);
        }
    }

    // Output literals (ASCII lines in both formats).
    let mut output_lits: Vec<u64> = Vec::new();
    for _ in 0..n_outputs {
        let line = cursor.expect_line("an output literal")?;
        output_lits.push(parse_literal(line.trim(), &cursor, max_var)?);
    }

    // AND definitions: keyed by defining variable.
    let mut ands: HashMap<u64, AndDef> = HashMap::new();
    let mut and_order: Vec<u64> = Vec::new();
    if binary {
        for i in 0..n_ands {
            let lhs = 2 * (n_inputs + i + 1);
            let delta0 = cursor.read_varint()?;
            let delta1 = cursor.read_varint()?;
            let rhs0 = lhs
                .checked_sub(delta0)
                .filter(|&r| r < lhs)
                .ok_or_else(|| {
                    cursor.err(format!("AND {lhs}: delta {delta0} puts rhs0 out of range"))
                })?;
            let rhs1 = rhs0.checked_sub(delta1).ok_or_else(|| {
                cursor.err(format!("AND {lhs}: delta {delta1} puts rhs1 out of range"))
            })?;
            ands.insert(lhs / 2, AndDef { rhs0, rhs1 });
            and_order.push(lhs / 2);
        }
    } else {
        for _ in 0..n_ands {
            let line = cursor.expect_line("an AND definition")?;
            let toks: Vec<&str> = line.split_whitespace().collect();
            let [lhs, rhs0, rhs1] = toks.as_slice() else {
                return Err(cursor.err(format!("AND needs `lhs rhs0 rhs1`, got `{line}`")));
            };
            let lhs = parse_literal(lhs, &cursor, max_var)?;
            let rhs0 = parse_literal(rhs0, &cursor, max_var)?;
            let rhs1 = parse_literal(rhs1, &cursor, max_var)?;
            if lhs < 2 || lhs % 2 != 0 {
                return Err(cursor.err(format!("AND lhs {lhs} must be even and nonzero")));
            }
            if input_vars.contains(&(lhs / 2)) {
                return Err(cursor.err(format!("AND lhs {lhs} redefines an input")));
            }
            if ands.insert(lhs / 2, AndDef { rhs0, rhs1 }).is_some() {
                return Err(cursor.err(format!("AND lhs {lhs} defined twice")));
            }
            and_order.push(lhs / 2);
        }
    }

    // Symbol table and comment section.
    let mut input_syms: HashMap<usize, String> = HashMap::new();
    let mut output_syms: HashMap<usize, String> = HashMap::new();
    while let Some(line) = cursor.read_line()? {
        let line = line.trim_end();
        if line == "c" {
            break; // comment section follows; ignore the rest
        }
        if line.is_empty() {
            continue;
        }
        let Some(kind) = line.get(..1) else {
            return Err(cursor.err(format!("unrecognized symbol line `{line}`")));
        };
        let rest = &line[1..];
        let (pos_str, name) = rest
            .split_once(char::is_whitespace)
            .ok_or_else(|| cursor.err(format!("malformed symbol line `{line}`")))?;
        let pos: usize = pos_str
            .parse()
            .map_err(|_| cursor.err(format!("bad symbol position `{pos_str}`")))?;
        let name = name.trim().to_owned();
        if name.is_empty() {
            return Err(cursor.err(format!("empty symbol name in `{line}`")));
        }
        let table = match kind {
            "i" if (pos as u64) < n_inputs => &mut input_syms,
            "o" if (pos as u64) < n_outputs => &mut output_syms,
            "i" | "o" => {
                return Err(cursor.err(format!("symbol position {pos} out of range in `{line}`")))
            }
            _ => return Err(cursor.err(format!("unrecognized symbol line `{line}`"))),
        };
        if table.insert(pos, name).is_some() {
            return Err(cursor.err(format!("duplicate symbol for `{}{pos}`", kind)));
        }
    }

    // Build the netlist: inputs first (symbol name or `i{pos}`), then
    // AND/NOT nodes in definition order via iterative DFS (ASCII files
    // may order definitions arbitrarily).
    let mut builder = Netlist::builder();
    let mut lit2node: HashMap<u64, NodeId> = HashMap::new();
    for (pos, &var) in input_vars.iter().enumerate() {
        let name = input_syms
            .get(&pos)
            .cloned()
            .unwrap_or_else(|| format!("i{pos}"));
        let id = builder.try_input(&name)?;
        lit2node.insert(2 * var, id);
    }

    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        Visiting,
        Done,
    }
    let mut marks: HashMap<u64, Mark> = HashMap::new();
    for &root in &and_order {
        if marks.get(&root) == Some(&Mark::Done) {
            continue;
        }
        // Stack of (var, next_fanin_to_process).
        let mut stack: Vec<(u64, usize)> = vec![(root, 0)];
        while let Some((var, idx)) = stack.pop() {
            if lit2node.contains_key(&(2 * var)) {
                continue;
            }
            let def = &ands[&var];
            if idx == 0 {
                if marks.get(&var) == Some(&Mark::Visiting) {
                    return Err(
                        cursor.err(format!("combinational cycle through literal {}", 2 * var))
                    );
                }
                marks.insert(var, Mark::Visiting);
            }
            let rhs = [def.rhs0, def.rhs1];
            if let Some(&fanin_lit) = rhs.get(idx) {
                stack.push((var, idx + 1));
                let fanin_var = fanin_lit / 2;
                if fanin_lit >= 2 && !lit2node.contains_key(&(2 * fanin_var)) {
                    if !ands.contains_key(&fanin_var) {
                        return Err(
                            cursor.err(format!("literal {fanin_lit} is neither input nor AND"))
                        );
                    }
                    if marks.get(&fanin_var) == Some(&Mark::Visiting) {
                        return Err(cursor.err(format!(
                            "combinational cycle through literal {}",
                            2 * fanin_var
                        )));
                    }
                    stack.push((fanin_var, 0));
                }
            } else {
                let f0 = node_for_lit(&mut builder, &mut lit2node, def.rhs0, &mut delay_fn)?;
                let f1 = node_for_lit(&mut builder, &mut lit2node, def.rhs1, &mut delay_fn)?;
                let delay = delay_fn(GateKind::And, 2);
                let id =
                    builder.gate(GateKind::And, &format!("n{}", 2 * var), vec![f0, f1], delay)?;
                lit2node.insert(2 * var, id);
                marks.insert(var, Mark::Done);
            }
        }
    }

    for (pos, &lit) in output_lits.iter().enumerate() {
        if lit >= 2 && !lit2node.contains_key(&(2 * (lit / 2))) {
            return Err(cursor.err(format!("output literal {lit} is neither input nor AND")));
        }
        let id = node_for_lit(&mut builder, &mut lit2node, lit, &mut delay_fn)?;
        let name = output_syms
            .get(&pos)
            .cloned()
            .unwrap_or_else(|| format!("o{pos}"));
        builder.try_output(&name, id)?;
    }
    builder.finish()
}

/// The node for a literal, materializing shared constant and NOT nodes
/// on first use (`n{lit}` for the negation of an existing node).
fn node_for_lit(
    builder: &mut NetlistBuilder,
    lit2node: &mut HashMap<u64, NodeId>,
    lit: u64,
    delay_fn: &mut impl FnMut(GateKind, usize) -> DelayBounds,
) -> Result<NodeId, NetlistError> {
    if let Some(&id) = lit2node.get(&lit) {
        return Ok(id);
    }
    let id = match lit {
        0 => builder.gate(GateKind::Const0, "const0", vec![], DelayBounds::ZERO)?,
        1 => builder.gate(GateKind::Const1, "const1", vec![], DelayBounds::ZERO)?,
        _ => {
            let pos = lit2node
                .get(&(lit & !1))
                .copied()
                .ok_or_else(|| NetlistError::UnknownNode(format!("literal {}", lit & !1)))?;
            let delay = delay_fn(GateKind::Not, 1);
            builder.gate(GateKind::Not, &format!("n{lit}"), vec![pos], delay)?
        }
    };
    lit2node.insert(lit, id);
    Ok(id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parsers::unit_delays;
    use crate::Time;

    /// Hand-encoded binary file: `aig 3 2 0 1 1`, output 6, AND
    /// 6 = 5 & 2 (i.e. `!b & a`; rhs0 ≥ rhs1 as the binary format
    /// requires), so delta0 = 6−5 = 1 and delta1 = 5−2 = 3.
    fn binary_and_not() -> Vec<u8> {
        let mut v = b"aig 3 2 0 1 1\n6\n".to_vec();
        v.extend([1u8, 3u8]); // the single AND, LEB128 deltas
        v.extend_from_slice(b"i0 a\ni1 b\no0 o\n");
        v
    }

    #[test]
    fn parses_ascii_and_not() {
        let src = "aag 3 2 0 1 1\n2\n4\n6\n6 2 5\ni0 a\ni1 b\no0 o\n";
        let n = parse_aiger(src.as_bytes(), unit_delays).unwrap();
        assert_eq!(n.inputs().len(), 2);
        assert_eq!(n.outputs().len(), 1);
        // o = a & !b: one AND + one NOT.
        assert_eq!(n.gate_count(), 2);
        assert_eq!(n.evaluate_outputs(&[true, false]), vec![true]);
        assert_eq!(n.evaluate_outputs(&[true, true]), vec![false]);
        assert_eq!(n.evaluate_outputs(&[false, false]), vec![false]);
    }

    #[test]
    fn parses_binary_and_not() {
        let n = parse_aiger(&binary_and_not(), unit_delays).unwrap();
        assert_eq!(n.inputs().len(), 2);
        // 6 = 5 & 2 = !b & a.
        assert_eq!(n.evaluate_outputs(&[true, false]), vec![true]);
        assert_eq!(n.evaluate_outputs(&[true, true]), vec![false]);
        assert_eq!(n.evaluate_outputs(&[false, false]), vec![false]);
    }

    #[test]
    fn binary_and_ascii_encode_same_function() {
        let ascii = "aag 3 2 0 1 1\n2\n4\n6\n6 5 2\ni0 a\ni1 b\no0 o\n";
        let a = parse_aiger(ascii.as_bytes(), unit_delays).unwrap();
        let b = parse_aiger(&binary_and_not(), unit_delays).unwrap();
        assert_eq!(a.structural_signature(), b.structural_signature());
        for bits in 0..4u32 {
            let v: Vec<bool> = (0..2).map(|i| (bits >> i) & 1 == 1).collect();
            assert_eq!(a.evaluate_outputs(&v), b.evaluate_outputs(&v));
        }
    }

    #[test]
    fn negated_literals_share_one_not_node() {
        // Both ANDs consume !a (literal 3): only one NOT node appears.
        let src = "aag 4 2 0 2 2\n2\n4\n6\n8\n6 3 4\n8 3 4\n";
        let n = parse_aiger(src.as_bytes(), unit_delays).unwrap();
        assert_eq!(n.gate_count(), 3); // 1 NOT + 2 ANDs
    }

    #[test]
    fn constants_and_inverted_outputs() {
        // Outputs: constant false, constant true, !a.
        let src = "aag 1 1 0 3 0\n2\n0\n1\n3\n";
        let n = parse_aiger(src.as_bytes(), unit_delays).unwrap();
        assert_eq!(n.evaluate_outputs(&[false]), vec![false, true, true]);
        assert_eq!(n.evaluate_outputs(&[true]), vec![false, true, false]);
    }

    #[test]
    fn forward_references_resolve() {
        // AND 6 references AND 8 defined later (legal in ASCII AIGER).
        let src = "aag 4 1 0 1 2\n2\n6\n6 8 8\n8 2 2\n";
        let n = parse_aiger(src.as_bytes(), unit_delays).unwrap();
        assert_eq!(n.evaluate_outputs(&[true]), vec![true]);
        assert_eq!(n.evaluate_outputs(&[false]), vec![false]);
    }

    #[test]
    fn multi_fanout_symbols_and_delays() {
        let src = "aag 3 2 0 1 1\n2\n4\n6\n6 2 4\ni0 left\ni1 right\no0 conj\n";
        let mut seen = Vec::new();
        let n = parse_aiger(src.as_bytes(), |kind, arity| {
            seen.push((kind, arity));
            unit_delays(kind, arity)
        })
        .unwrap();
        assert_eq!(seen, vec![(GateKind::And, 2)]);
        assert_eq!(n.outputs()[0].0, "conj");
        assert_eq!(n.topological_delay(), Time::from_int(1));
    }

    #[test]
    fn hostile_inputs_yield_typed_errors() {
        let cases: &[(&[u8], &str)] = &[
            (b"", "unexpected end of file"),
            (b"avg 1 1 0 1 0\n", "bad magic"),
            (b"aag 1 1 0\n", "header needs"),
            (b"aag x 1 0 1 0\n", "bad header count"),
            (b"aag 2 1 1 1 0\n2\n", "latches"),
            (b"aag 1 1 0 1 0\n2\n9\n", "exceeds header"),
            (b"aag 1 2 0 1 0\n2\n4\n2\n", "inconsistent"),
            (b"aag 3 1 0 1 2\n2\n4\n4 2 2\n4 2 2\n", "defined twice"),
            (b"aag 2 1 0 1 1\n2\n4\n2 2 2\n", "redefines an input"),
            (b"aag 2 1 0 1 1\n2\n4\n4 4 4\n", "cycle"),
            (b"aag 3 1 0 1 1\n2\n4\n4 6 6\n", "neither input nor AND"),
            (b"aag 2 1 0 1 1\n2\n6\n4 2 2\n", "exceeds header"),
            (b"aag 1 1 0 1 0\n3\n2\n", "must be even"),
            (b"aag 2 2 0 1 0\n2\n2\n2\n", "defined twice"),
            (b"aag 1 1 0 1 0\n2\n2\nq0 name\n", "unrecognized symbol"),
            (b"aag 1 1 0 1 0\n2\n2\ni4 name\n", "out of range"),
            (b"aag 1 1 0 1 0\n2\n2\ni0 a\ni0 b\n", "duplicate symbol"),
            (b"aig 1 1 0 1 1\n2\n", "inconsistent"),
            (b"aig 2 1 0 1 1\n2\n", "truncated"),
            (
                b"aig 2 1 0 1 1\n2\n\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff",
                "overflows",
            ),
            (b"aig 2 1 0 1 1\n2\n\x05\x00", "out of range"),
            (b"aag 99999999999 0 0 0 0\n", "cap"),
            (b"aag 1 1 0 1 0\n2\n2\n\xff\xff\n", "non-UTF-8"),
        ];
        for (bytes, needle) in cases {
            let err = parse_aiger(bytes, unit_delays).expect_err(&format!("{bytes:?}"));
            assert!(
                err.to_string().contains(needle),
                "input {bytes:?}: expected error mentioning {needle:?}, got `{err}`"
            );
        }
    }

    #[test]
    fn symbol_name_collisions_are_typed() {
        let src = "aag 2 2 0 1 0\n2\n4\n2\ni0 same\ni1 same\n";
        let err = parse_aiger(src.as_bytes(), unit_delays).unwrap_err();
        assert!(matches!(
            err,
            NetlistError::Parse { .. } | NetlistError::DuplicateName(_)
        ));
    }

    #[test]
    fn comment_section_is_ignored() {
        // Comment bytes after the `c` marker are never read, so even
        // invalid UTF-8 there is fine.
        let mut bytes = b"aag 1 1 0 1 0\n2\n2\nc\nanything at all\n".to_vec();
        bytes.extend([0xc3u8, 0x28, b'\n']);
        let n = parse_aiger(&bytes, unit_delays).unwrap();
        assert_eq!(n.outputs().len(), 1);
    }
}
