//! A combinational BLIF subset parser.
//!
//! Supports the output of a SIS-style mapping flow: `.model`, `.inputs`,
//! `.outputs`, single-output `.names` cover tables, a `.gate` cell
//! subset and `.end`. Each cover is synthesized as a two-level
//! NOT/AND/OR network; latches and subcircuits are rejected (the paper
//! treats combinational logic).
//!
//! ```text
//! .model example
//! .inputs a b c
//! .outputs f
//! .names a b c f
//! 11- 1
//! --1 1
//! .end
//! ```
//!
//! `.gate` lines use the TBF cell library documented in `FORMATS.md`
//! (`inv`, `buf`, `and{n}`, `or{n}`, `nand{n}`, `nor{n}`, `xor{n}`,
//! `xnor{n}`, `maj3`, `mux`; formal pins `i0..i{n-1}` and `O`), mapping
//! one-to-one onto [`GateKind`] so structure survives a round trip:
//!
//! ```text
//! .gate nand2 i0=a i1=b O=f # @tbf delay 10800 12000
//! ```
//!
//! The same `@tbf` pragmas as in `.bench` apply: `# @tbf delay <min>
//! <max>` on a `.gate` line pins scaled delay bounds, and a standalone
//! `# @tbf output <name> <driver>` re-binds a declared output to a
//! differently-named driver.

use std::collections::HashMap;

use super::{
    check_inputs_first, check_writable_name, delay_pragma, parse_delay_pragma, parse_output_pragma,
    split_pragma,
};
use crate::delay::DelayBounds;
use crate::gate::GateKind;
use crate::netlist::{Netlist, NetlistError, NodeId};

struct Cover {
    inputs: Vec<String>,
    rows: Vec<(Vec<Option<bool>>, bool)>,
    line: usize,
}

enum Def {
    /// A `.names` cover table, synthesized as a two-level network.
    Cover(Cover),
    /// A `.gate` cell instance, mapping directly onto one gate node.
    Cell {
        kind: GateKind,
        fanins: Vec<String>,
        delay: Option<DelayBounds>,
        line: usize,
    },
}

impl Def {
    fn fanin_names(&self) -> &[String] {
        match self {
            Def::Cover(c) => &c.inputs,
            Def::Cell { fanins, .. } => fanins,
        }
    }

    fn line(&self) -> usize {
        match self {
            Def::Cover(c) => c.line,
            Def::Cell { line, .. } => *line,
        }
    }
}

/// Maps a TBF cell-library name to its gate kind and expected arity.
fn cell_kind(cell: &str) -> Result<(GateKind, usize), String> {
    match cell {
        "inv" => return Ok((GateKind::Not, 1)),
        "buf" => return Ok((GateKind::Buf, 1)),
        "maj3" => return Ok((GateKind::Maj, 3)),
        "mux" => return Ok((GateKind::Mux, 3)),
        _ => {}
    }
    let split = cell
        .find(|c: char| c.is_ascii_digit())
        .unwrap_or(cell.len());
    let kind = match &cell[..split] {
        "and" => GateKind::And,
        "or" => GateKind::Or,
        "nand" => GateKind::Nand,
        "nor" => GateKind::Nor,
        "xor" => GateKind::Xor,
        "xnor" => GateKind::Xnor,
        _ => return Err(format!("unknown cell `{cell}`")),
    };
    let arity: usize = cell[split..]
        .parse()
        .map_err(|_| format!("cell `{cell}` needs a fanin-count suffix"))?;
    if arity == 0 {
        return Err(format!("cell `{cell}` has zero fanins"));
    }
    Ok((kind, arity))
}

/// The cell-library name for a gate kind (`None` for inputs/constants).
fn kind_cell(kind: GateKind, arity: usize) -> Option<String> {
    Some(match kind {
        GateKind::Not => "inv".into(),
        GateKind::Buf => "buf".into(),
        GateKind::Maj => "maj3".into(),
        GateKind::Mux => "mux".into(),
        GateKind::And => format!("and{arity}"),
        GateKind::Or => format!("or{arity}"),
        GateKind::Nand => format!("nand{arity}"),
        GateKind::Nor => format!("nor{arity}"),
        GateKind::Xor => format!("xor{arity}"),
        GateKind::Xnor => format!("xnor{arity}"),
        GateKind::Input | GateKind::Const0 | GateKind::Const1 => return None,
    })
}

/// Parses BLIF text into a [`Netlist`], assigning the derived gates delay
/// bounds via `delay_fn(kind, fanin_count)`.
///
/// Cover tables mix on-set (`... 1`) and off-set (`... 0`) rows; a table
/// must be single-phase (all rows the same output value), which is what
/// SIS emits.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for unsupported constructs (latches,
/// subcircuits, multi-phase covers), malformed rows, cycles and dangling
/// references.
///
/// # Example
///
/// ```
/// use tbf_logic::parsers::{blif::parse_blif, unit_delays};
///
/// let src = "
/// .model mux
/// .inputs s a b
/// .outputs f
/// .names s a b f
/// 01- 1
/// 1-1 1
/// .end
/// ";
/// let n = parse_blif(src, unit_delays)?;
/// assert_eq!(n.evaluate_outputs(&[false, true, false]), vec![true]);
/// assert_eq!(n.evaluate_outputs(&[true, true, false]), vec![false]);
/// # Ok::<(), tbf_logic::NetlistError>(())
/// ```
pub fn parse_blif(
    text: &str,
    mut delay_fn: impl FnMut(GateKind, usize) -> DelayBounds,
) -> Result<Netlist, NetlistError> {
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut defs: HashMap<String, Def> = HashMap::new();
    let mut order: Vec<String> = Vec::new();
    // `@tbf output` pragma re-bindings: output name → (driver, line).
    let mut aliases: HashMap<String, (String, usize)> = HashMap::new();
    let mut alias_order: Vec<(String, usize)> = Vec::new();

    // Logical lines (backslash continuation), keeping 1-based numbers and
    // any `@tbf` pragma found on a constituent physical line.
    let mut logical: Vec<(usize, String, Option<String>)> = Vec::new();
    let mut pending: Option<(usize, String, Option<String>)> = None;
    for (i, raw) in text.lines().enumerate() {
        let (code, pragma) = split_pragma(raw);
        let line = code.trim_end();
        let (start, mut acc, mut prag) = pending.take().unwrap_or((i + 1, String::new(), None));
        if prag.is_none() {
            prag = pragma.map(str::to_owned);
        }
        if let Some(stripped) = line.strip_suffix('\\') {
            acc.push_str(stripped);
            acc.push(' ');
            pending = Some((start, acc, prag));
        } else {
            acc.push_str(line);
            logical.push((start, acc, prag));
        }
    }
    if let Some((start, acc, prag)) = pending {
        logical.push((start, acc, prag));
    }

    let mut idx = 0usize;
    while idx < logical.len() {
        let (lineno, line, pragma) = (
            logical[idx].0,
            logical[idx].1.trim().to_owned(),
            logical[idx].2.clone(),
        );
        idx += 1;
        let err = |message: String| NetlistError::Parse {
            line: lineno,
            message,
        };
        if line.is_empty() {
            if let Some(body) = pragma {
                let (name, driver) = parse_output_pragma(&body, lineno)?
                    .ok_or_else(|| err(format!("pragma `{body}` must annotate a .gate line")))?;
                if aliases.insert(name.clone(), (driver, lineno)).is_some() {
                    return Err(err(format!("duplicate output pragma for `{name}`")));
                }
                alias_order.push((name, lineno));
            }
            continue;
        }
        // A pragma attached to a directive must be a delay pragma on a
        // `.gate` line; stash it for that branch below.
        let mut pragma_delay = None;
        if let Some(body) = &pragma {
            pragma_delay = parse_delay_pragma(body, lineno)?;
            if pragma_delay.is_none() {
                return Err(err(format!(
                    "only `@tbf delay` pragmas may annotate a line, got `{body}`"
                )));
            }
            if !line.starts_with(".gate") {
                return Err(err("delay pragma must annotate a .gate line".into()));
            }
        }
        let mut tokens = line.split_whitespace();
        let head = tokens.next().unwrap_or_default();
        match head {
            ".model" => {}
            ".inputs" => inputs.extend(tokens.map(str::to_owned)),
            ".outputs" => {
                for name in tokens {
                    if outputs.iter().any(|o| o == name) {
                        return Err(err(format!("duplicate output `{name}`")));
                    }
                    outputs.push(name.to_owned());
                }
            }
            ".names" => {
                let mut signals: Vec<String> = tokens.map(str::to_owned).collect();
                let target = signals
                    .pop()
                    .ok_or_else(|| err(".names with no signals".into()))?;
                let n_in = signals.len();
                let mut rows = Vec::new();
                while idx < logical.len() {
                    let (rl, row) = (logical[idx].0, logical[idx].1.trim().to_owned());
                    if row.is_empty() || row.starts_with('.') {
                        break;
                    }
                    idx += 1;
                    let parts: Vec<&str> = row.split_whitespace().collect();
                    let (pattern, value) = match (n_in, parts.as_slice()) {
                        (0, [v]) => ("", *v),
                        (_, [p, v]) => (*p, *v),
                        _ => {
                            return Err(NetlistError::Parse {
                                line: rl,
                                message: format!("malformed cover row `{row}`"),
                            })
                        }
                    };
                    if pattern.len() != n_in {
                        return Err(NetlistError::Parse {
                            line: rl,
                            message: format!(
                                "cover row has {} literals, expected {n_in}",
                                pattern.len()
                            ),
                        });
                    }
                    let lits: Vec<Option<bool>> = pattern
                        .chars()
                        .map(|c| match c {
                            '0' => Ok(Some(false)),
                            '1' => Ok(Some(true)),
                            '-' => Ok(None),
                            other => Err(NetlistError::Parse {
                                line: rl,
                                message: format!("bad literal `{other}`"),
                            }),
                        })
                        .collect::<Result<_, _>>()?;
                    let out = match value {
                        "1" => true,
                        "0" => false,
                        other => {
                            return Err(NetlistError::Parse {
                                line: rl,
                                message: format!("bad output value `{other}`"),
                            })
                        }
                    };
                    rows.push((lits, out));
                }
                if defs.contains_key(&target) {
                    return Err(NetlistError::DuplicateName(target));
                }
                if inputs.contains(&target) {
                    return Err(err(format!(
                        "`{target}` is declared in .inputs and defined by .names"
                    )));
                }
                defs.insert(
                    target.clone(),
                    Def::Cover(Cover {
                        inputs: signals,
                        rows,
                        line: lineno,
                    }),
                );
                order.push(target);
            }
            ".gate" => {
                let cell = tokens
                    .next()
                    .ok_or_else(|| err(".gate with no cell name".into()))?;
                let (kind, arity) = cell_kind(cell).map_err(&err)?;
                let mut fanins: Vec<String> = Vec::new();
                let mut target: Option<String> = None;
                for tok in tokens {
                    let (formal, actual) = tok
                        .split_once('=')
                        .ok_or_else(|| err(format!("malformed pin binding `{tok}`")))?;
                    if actual.is_empty() {
                        return Err(err(format!("empty actual in pin binding `{tok}`")));
                    }
                    if formal == "O" {
                        if target.replace(actual.to_owned()).is_some() {
                            return Err(err(format!("duplicate output pin on cell `{cell}`")));
                        }
                    } else if formal == format!("i{}", fanins.len()) {
                        fanins.push(actual.to_owned());
                    } else {
                        return Err(err(format!(
                            "unexpected pin `{formal}` (expected i{} or O)",
                            fanins.len()
                        )));
                    }
                }
                let target = target.ok_or_else(|| err(format!("cell `{cell}` has no O pin")))?;
                if fanins.len() != arity {
                    return Err(err(format!(
                        "cell `{cell}` expects {arity} fanins, got {}",
                        fanins.len()
                    )));
                }
                if defs.contains_key(&target) {
                    return Err(NetlistError::DuplicateName(target));
                }
                if inputs.contains(&target) {
                    return Err(err(format!(
                        "`{target}` is declared in .inputs and defined by .gate"
                    )));
                }
                defs.insert(
                    target.clone(),
                    Def::Cell {
                        kind,
                        fanins,
                        delay: pragma_delay,
                        line: lineno,
                    },
                );
                order.push(target);
            }
            ".end" => break,
            ".latch" | ".subckt" | ".mlatch" => {
                return Err(err(format!("unsupported BLIF construct `{head}`")));
            }
            other => return Err(err(format!("unrecognized directive `{other}`"))),
        }
    }

    // Catch the reverse declaration order too (`.names` before a late
    // `.inputs` naming the same signal).
    for name in &inputs {
        if let Some(def) = defs.get(name) {
            return Err(NetlistError::Parse {
                line: def.line(),
                message: format!("`{name}` is declared in .inputs and defined as a gate"),
            });
        }
    }

    // Synthesize covers in dependency order.
    let mut builder = Netlist::builder();
    let mut resolved: HashMap<String, NodeId> = HashMap::new();
    for name in &inputs {
        let id = builder.try_input(name)?;
        resolved.insert(name.clone(), id);
    }
    // Kahn-style resolution loop (definitions are usually few; quadratic
    // is fine and keeps cycle detection trivial).
    let mut remaining = order.clone();
    while !remaining.is_empty() {
        let ready = remaining.iter().position(|name| {
            defs[name]
                .fanin_names()
                .iter()
                .all(|i| resolved.contains_key(i))
        });
        match ready {
            Some(p) => {
                let name = remaining.remove(p);
                let id = match &defs[&name] {
                    Def::Cover(cover) => {
                        synth_cover(&mut builder, &name, cover, &resolved, &mut delay_fn)?
                    }
                    Def::Cell {
                        kind,
                        fanins,
                        delay,
                        ..
                    } => {
                        let fanin_ids: Vec<NodeId> = fanins
                            .iter()
                            .map(|f| {
                                resolved
                                    .get(f)
                                    .copied()
                                    .ok_or_else(|| NetlistError::UnknownNode(f.clone()))
                            })
                            .collect::<Result<_, _>>()?;
                        let delay = delay.unwrap_or_else(|| delay_fn(*kind, fanin_ids.len()));
                        builder.gate(*kind, &name, fanin_ids, delay)?
                    }
                };
                resolved.insert(name, id);
            }
            None => {
                // Nothing progressed: cycle or dangling reference.
                let name = &remaining[0];
                let def = &defs[name];
                let missing = def
                    .fanin_names()
                    .iter()
                    .find(|i| !resolved.contains_key(*i) && !defs.contains_key(*i));
                return Err(match missing {
                    Some(m) => NetlistError::UnknownNode(m.clone()),
                    None => NetlistError::Parse {
                        line: def.line(),
                        message: format!("combinational cycle through `{name}`"),
                    },
                });
            }
        }
    }

    // Every output pragma must re-bind a declared output.
    for (name, line) in &alias_order {
        if !outputs.iter().any(|o| o == name) {
            return Err(NetlistError::Parse {
                line: *line,
                message: format!("output pragma for undeclared output `{name}`"),
            });
        }
    }
    for name in &outputs {
        let driver = aliases.get(name).map_or(name.as_str(), |(d, _)| d.as_str());
        let id = resolved
            .get(driver)
            .copied()
            .ok_or_else(|| NetlistError::UnknownNode(driver.to_owned()))?;
        builder.try_output(name, id)?;
    }
    builder.finish()
}

fn synth_cover(
    builder: &mut crate::netlist::NetlistBuilder,
    name: &str,
    cover: &Cover,
    resolved: &HashMap<String, NodeId>,
    delay_fn: &mut impl FnMut(GateKind, usize) -> DelayBounds,
) -> Result<NodeId, NetlistError> {
    // Constant covers.
    if cover.rows.is_empty() {
        return builder.gate(GateKind::Const0, name, vec![], DelayBounds::ZERO);
    }
    let phase = cover.rows[0].1;
    if cover.rows.iter().any(|(_, p)| *p != phase) {
        return Err(NetlistError::Parse {
            line: cover.line,
            message: format!("mixed-phase cover for `{name}`"),
        });
    }
    if cover.inputs.is_empty() {
        let kind = if phase {
            GateKind::Const1
        } else {
            GateKind::Const0
        };
        return builder.gate(kind, name, vec![], DelayBounds::ZERO);
    }

    // Build one product per row, OR them, invert for off-set covers.
    let mut products = Vec::new();
    for (r, (lits, _)) in cover.rows.iter().enumerate() {
        let mut terms = Vec::new();
        for (i, lit) in lits.iter().enumerate() {
            // The resolution loop only schedules fully-resolved covers,
            // but a typed error beats a panic if that invariant slips.
            let src = *resolved
                .get(&cover.inputs[i])
                .ok_or_else(|| NetlistError::UnknownNode(cover.inputs[i].clone()))?;
            match lit {
                None => {}
                Some(true) => terms.push(src),
                Some(false) => {
                    let inv_name = format!("{name}__r{r}_n{i}");
                    let inv = match builder.find(&inv_name) {
                        Some(id) => id,
                        None => builder.gate(
                            GateKind::Not,
                            &inv_name,
                            vec![src],
                            delay_fn(GateKind::Not, 1),
                        )?,
                    };
                    terms.push(inv);
                }
            }
        }
        let product = match terms.len() {
            0 => builder.gate(
                GateKind::Const1,
                &format!("{name}__r{r}"),
                vec![],
                DelayBounds::ZERO,
            )?,
            1 => terms[0],
            n => builder.gate(
                GateKind::And,
                &format!("{name}__r{r}"),
                terms,
                delay_fn(GateKind::And, n),
            )?,
        };
        products.push(product);
    }
    let sum = match products.len() {
        1 => products[0],
        n => builder.gate(
            GateKind::Or,
            &format!("{name}__sum"),
            products,
            delay_fn(GateKind::Or, n),
        )?,
    };
    if phase {
        // Name the node: if `sum` already is a reused node (single product
        // single literal), add a zero-delay buffer carrying the name.
        builder.gate(GateKind::Buf, name, vec![sum], DelayBounds::ZERO)
    } else {
        builder.gate(GateKind::Not, name, vec![sum], delay_fn(GateKind::Not, 1))
    }
}

/// Serializes a netlist to self-contained combinational BLIF.
///
/// Every gate becomes a `.gate` cell-library instance (the subset this
/// parser reads back) carrying a `# @tbf delay` pragma with its scaled
/// delay bounds; constants become constant `.names` covers; an output
/// whose name differs from its driver gets a `# @tbf output` pragma
/// instead of an alias cover. Gates are emitted in node order with all
/// inputs first, so `parse_blif(&write_blif(n, m)?, _)` reproduces `n`'s
/// `structural_signature` and every `cone_signature` byte for byte,
/// regardless of the delay callback used on reparse.
///
/// # Errors
///
/// Returns [`NetlistError::Unwritable`] if a name cannot survive reparse
/// as a BLIF token, the inputs do not occupy the first node ids, or a
/// constant node carries a nonzero delay (constant covers cannot carry a
/// delay pragma).
///
/// # Example
///
/// ```
/// use tbf_logic::parsers::blif::{parse_blif, write_blif};
/// use tbf_logic::parsers::{mcnc_like_delays, unit_delays};
///
/// let src = ".model m\n.inputs a b\n.outputs f\n.names a b f\n11 1\n.end\n";
/// let n = parse_blif(src, unit_delays)?;
/// let round = parse_blif(&write_blif(&n, "m")?, mcnc_like_delays)?;
/// assert_eq!(round.structural_signature(), n.structural_signature());
/// assert_eq!(round.evaluate_outputs(&[true, true]), vec![true]);
/// # Ok::<(), tbf_logic::NetlistError>(())
/// ```
pub fn write_blif(netlist: &Netlist, model: &str) -> Result<String, NetlistError> {
    use std::fmt::Write as _;
    check_inputs_first(netlist)?;
    let mut out = String::new();
    let _ = writeln!(out, ".model {model}");
    let mut input_names: Vec<&str> = Vec::new();
    for &i in netlist.inputs() {
        let name = netlist.node(i).name();
        check_writable_name(name, "BLIF")?;
        input_names.push(name);
    }
    let _ = writeln!(out, ".inputs {}", input_names.join(" "));
    let output_names: Vec<&str> = netlist.outputs().iter().map(|(n, _)| n.as_str()).collect();
    for name in &output_names {
        check_writable_name(name, "BLIF")?;
    }
    let _ = writeln!(out, ".outputs {}", output_names.join(" "));
    // Output-alias pragmas directly after the declarations they re-bind.
    for (alias, id) in netlist.outputs() {
        let driver = netlist.node(*id).name();
        if driver != alias {
            let _ = writeln!(out, "# @tbf output {alias} {driver}");
        }
    }

    for (_, node) in netlist.nodes() {
        let kind = node.kind();
        let name = node.name();
        if kind == GateKind::Input {
            continue;
        }
        check_writable_name(name, "BLIF")?;
        match kind_cell(kind, node.fanins().len()) {
            Some(cell) => {
                let pins: Vec<String> = node
                    .fanins()
                    .iter()
                    .enumerate()
                    .map(|(i, f)| format!("i{i}={}", netlist.node(*f).name()))
                    .collect();
                let _ = writeln!(
                    out,
                    ".gate {cell} {} O={name} {}",
                    pins.join(" "),
                    delay_pragma(node.delay())
                );
            }
            None => {
                // Constants: trivial covers, which reparse to the same
                // single node. They cannot carry a delay pragma, so a
                // nonzero delay would not survive the round trip.
                if node.delay() != DelayBounds::ZERO {
                    return Err(NetlistError::Unwritable {
                        name: name.to_owned(),
                        detail: "constant node with nonzero delay has no BLIF encoding".into(),
                    });
                }
                if kind == GateKind::Const0 {
                    let _ = writeln!(out, ".names {name}");
                } else {
                    let _ = writeln!(out, ".names {name}\n1");
                }
            }
        }
    }
    let _ = writeln!(out, ".end");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parsers::unit_delays;

    #[test]
    fn parses_two_level_cover() {
        let src = "
.model m
.inputs a b c
.outputs f
.names a b c f
11- 1
--1 1
.end
";
        let n = parse_blif(src, unit_delays).unwrap();
        for i in 0..8u8 {
            let a = [(i & 1) != 0, (i & 2) != 0, (i & 4) != 0];
            let expect = (a[0] && a[1]) || a[2];
            assert_eq!(n.evaluate_outputs(&a), vec![expect], "{a:?}");
        }
    }

    #[test]
    fn off_set_cover_inverts() {
        let src = "
.model m
.inputs a b
.outputs f
.names a b f
11 0
.end
";
        let n = parse_blif(src, unit_delays).unwrap();
        // f = !(a·b) = NAND.
        assert_eq!(n.evaluate_outputs(&[true, true]), vec![false]);
        assert_eq!(n.evaluate_outputs(&[true, false]), vec![true]);
    }

    #[test]
    fn negative_literals() {
        let src = "
.model m
.inputs a b
.outputs f
.names a b f
01 1
.end
";
        let n = parse_blif(src, unit_delays).unwrap();
        // f = !a · b.
        assert_eq!(n.evaluate_outputs(&[false, true]), vec![true]);
        assert_eq!(n.evaluate_outputs(&[true, true]), vec![false]);
    }

    #[test]
    fn constant_covers() {
        let src = "
.model m
.inputs a
.outputs one zero buf
.names one
1
.names zero
.names a buf
1 1
.end
";
        let n = parse_blif(src, unit_delays).unwrap();
        assert_eq!(n.evaluate_outputs(&[false]), vec![true, false, false]);
        assert_eq!(n.evaluate_outputs(&[true]), vec![true, false, true]);
    }

    #[test]
    fn chained_covers_resolve_in_any_order() {
        let src = "
.model m
.inputs a
.outputs f
.names g f
1 1
.names a g
0 1
.end
";
        let n = parse_blif(src, unit_delays).unwrap();
        // f = g = !a.
        assert_eq!(n.evaluate_outputs(&[false]), vec![true]);
        assert_eq!(n.evaluate_outputs(&[true]), vec![false]);
    }

    #[test]
    fn continuation_lines() {
        let src = ".model m\n.inputs a \\\nb\n.outputs f\n.names a b f\n11 1\n.end\n";
        let n = parse_blif(src, unit_delays).unwrap();
        assert_eq!(n.inputs().len(), 2);
        assert_eq!(n.evaluate_outputs(&[true, true]), vec![true]);
    }

    #[test]
    fn latch_rejected() {
        let src = ".model m\n.inputs a\n.outputs q\n.latch a q re clk 0\n.end\n";
        let err = parse_blif(src, unit_delays).unwrap_err();
        assert!(err.to_string().contains(".latch"), "{err}");
    }

    #[test]
    fn mixed_phase_cover_rejected() {
        let src = "
.model m
.inputs a
.outputs f
.names a f
1 1
0 0
.end
";
        let err = parse_blif(src, unit_delays).unwrap_err();
        assert!(err.to_string().contains("mixed-phase"), "{err}");
    }

    #[test]
    fn cycle_rejected() {
        let src = "
.model m
.inputs a
.outputs f
.names g f
1 1
.names f g
1 1
.end
";
        let err = parse_blif(src, unit_delays).unwrap_err();
        assert!(err.to_string().contains("cycle"), "{err}");
    }

    #[test]
    fn dangling_reference_rejected() {
        let src = "
.model m
.inputs a
.outputs f
.names ghost f
1 1
.end
";
        let err = parse_blif(src, unit_delays).unwrap_err();
        assert!(matches!(err, NetlistError::UnknownNode(n) if n == "ghost"));
    }

    #[test]
    fn hostile_inputs_yield_typed_errors() {
        // (source, substring the error must mention) — every case must
        // fail with a typed `NetlistError`, never a panic or a silently
        // wrong netlist.
        let cases: &[(&str, &str)] = &[
            (
                ".model m\n.inputs a\n.outputs f f\n.names a f\n1 1\n.end\n",
                "duplicate output",
            ),
            (
                ".model m\n.inputs a\n.outputs f\n.outputs f\n.names a f\n1 1\n.end\n",
                "duplicate output",
            ),
            (
                ".model m\n.inputs a\n.outputs a\n.names a\n1\n.end\n",
                ".inputs and defined",
            ),
            (
                ".model m\n.outputs a\n.names a\n1\n.inputs a\n.end\n",
                ".inputs and defined",
            ),
            (
                ".model m\n.inputs a\n.outputs f\n.names f\n1\n.names f\n0\n.end\n",
                "duplicate node name",
            ),
            (
                ".model m\n.inputs a\n.outputs f\n.names\n.end\n",
                "no signals",
            ),
        ];
        for (src, needle) in cases {
            let err = parse_blif(src, unit_delays).expect_err(src);
            assert!(
                err.to_string().contains(needle),
                "source {src:?}: expected error mentioning {needle:?}, got `{err}`"
            );
        }
    }

    #[test]
    fn output_may_alias_an_input() {
        let src = ".model m\n.inputs a\n.outputs a f\n.names a f\n0 1\n.end\n";
        let n = parse_blif(src, unit_delays).unwrap();
        assert_eq!(n.evaluate_outputs(&[true]), vec![true, false]);
        assert_eq!(n.evaluate_outputs(&[false]), vec![false, true]);
    }

    #[test]
    fn crlf_and_trailing_whitespace_accepted() {
        let src = ".model m\r\n.inputs a b  \r\n.outputs f\t\r\n.names a b f\r\n11 1  \r\n.end\r\n";
        let n = parse_blif(src, unit_delays).unwrap();
        assert_eq!(n.inputs().len(), 2);
        assert_eq!(n.evaluate_outputs(&[true, true]), vec![true]);
    }

    #[test]
    fn write_blif_round_trips() {
        use crate::generators::adders::paper_bypass_adder;
        let n = paper_bypass_adder();
        let text = write_blif(&n, "bypass").unwrap();
        // Delay pragmas override the reparse callback, so the signature
        // survives even under a different delay assignment.
        let round = parse_blif(&text, crate::parsers::mcnc_like_delays).unwrap();
        assert_eq!(round.structural_signature(), n.structural_signature());
        for (i, _) in n.outputs().iter().enumerate() {
            assert_eq!(round.cone_signature(i), n.cone_signature(i));
        }
        for bits in 0..512u32 {
            let v: Vec<bool> = (0..9).map(|i| (bits >> i) & 1 == 1).collect();
            assert_eq!(
                round.evaluate_outputs(&v),
                n.evaluate_outputs(&v),
                "{bits:#b}"
            );
        }
    }

    #[test]
    fn gate_cells_parse() {
        let src = "
.model m
.inputs a b c
.outputs f g
.gate nand2 i0=a i1=b O=t # @tbf delay 10800 12000
.gate mux i0=c i1=t i2=a O=f
.gate inv i0=f O=g
.end
";
        let n = parse_blif(src, unit_delays).unwrap();
        assert_eq!(n.gate_count(), 3);
        let t = n.node(n.outputs()[0].1); // f = mux(c, t, a)
        assert_eq!(t.kind(), GateKind::Mux);
        // The pragma pinned t's delay; the others got the callback's.
        let nand = n
            .nodes()
            .find(|(_, nd)| nd.kind() == GateKind::Nand)
            .unwrap()
            .1;
        assert_eq!(nand.delay().min.scaled(), 10800);
        assert_eq!(nand.delay().max.scaled(), 12000);
        // mux(s=c, d0=t, d1=a): c=0 selects t = !(a·b).
        assert_eq!(n.evaluate_outputs(&[true, true, false]), vec![false, true]);
    }

    #[test]
    fn hostile_gate_lines_yield_typed_errors() {
        let cases: &[(&str, &str)] = &[
            (".model m\n.inputs a\n.outputs f\n.gate\n.end\n", "no cell"),
            (
                ".model m\n.inputs a\n.outputs f\n.gate frob i0=a O=f\n.end\n",
                "unknown cell",
            ),
            (
                ".model m\n.inputs a\n.outputs f\n.gate nand i0=a O=f\n.end\n",
                "fanin-count suffix",
            ),
            (
                ".model m\n.inputs a\n.outputs f\n.gate and0 O=f\n.end\n",
                "zero fanins",
            ),
            (
                ".model m\n.inputs a\n.outputs f\n.gate inv i0=a\n.end\n",
                "no O pin",
            ),
            (
                ".model m\n.inputs a\n.outputs f\n.gate inv i1=a O=f\n.end\n",
                "unexpected pin",
            ),
            (
                ".model m\n.inputs a\n.outputs f\n.gate inv bogus O=f\n.end\n",
                "malformed pin",
            ),
            (
                ".model m\n.inputs a b\n.outputs f\n.gate inv i0=a i1=b O=f\n.end\n",
                "expects 1 fanins",
            ),
            (
                ".model m\n.inputs a\n.outputs f\n.gate and2 i0=a O=f\n.end\n",
                "expects 2 fanins",
            ),
            (
                ".model m\n.inputs a\n.outputs f\n.gate inv i0=a O=f O=f\n.end\n",
                "duplicate output pin",
            ),
            (
                ".model m\n.inputs a\n.outputs a\n.gate inv i0=a O=a\n.end\n",
                ".inputs and defined",
            ),
            (
                ".model m\n.inputs a\n.outputs f\n.names a f # @tbf delay 1 2\n1 1\n.end\n",
                ".gate line",
            ),
            (
                ".model m\n.inputs a\n.outputs f\n.gate inv i0=a O=f\n# @tbf output g f\n.end\n",
                "undeclared output",
            ),
        ];
        for (src, needle) in cases {
            let err = parse_blif(src, unit_delays).expect_err(src);
            assert!(
                err.to_string().contains(needle),
                "source {src:?}: expected error mentioning {needle:?}, got `{err}`"
            );
        }
    }

    #[test]
    fn write_blif_handles_all_kinds() {
        let mut b = Netlist::builder();
        let x = b.input("x");
        let y = b.input("y");
        let z = b.input("z");
        let d = crate::DelayBounds::fixed(crate::Time::from_int(1));
        let gates = [
            (GateKind::And, vec![x, y]),
            (GateKind::Or, vec![x, y, z]),
            (GateKind::Nand, vec![x, y]),
            (GateKind::Nor, vec![x, z]),
            (GateKind::Xor, vec![x, y, z]),
            (GateKind::Xnor, vec![x, y]),
            (GateKind::Not, vec![x]),
            (GateKind::Buf, vec![z]),
            (GateKind::Maj, vec![x, y, z]),
            (GateKind::Mux, vec![x, y, z]),
        ];
        let mut ids = Vec::new();
        for (i, (k, f)) in gates.iter().enumerate() {
            ids.push(b.gate(*k, &format!("k{i}"), f.clone(), d).unwrap());
        }
        let c0 = b
            .gate(GateKind::Const0, "c0", vec![], crate::DelayBounds::ZERO)
            .unwrap();
        let c1 = b
            .gate(GateKind::Const1, "c1", vec![], crate::DelayBounds::ZERO)
            .unwrap();
        ids.extend([c0, c1]);
        for (i, id) in ids.iter().enumerate() {
            b.output(&format!("o{i}"), *id);
        }
        let n = b.finish().unwrap();
        let round = parse_blif(&write_blif(&n, "kinds").unwrap(), unit_delays).unwrap();
        assert_eq!(round.structural_signature(), n.structural_signature());
        for bits in 0..8u32 {
            let v: Vec<bool> = (0..3).map(|i| (bits >> i) & 1 == 1).collect();
            assert_eq!(round.evaluate_outputs(&v), n.evaluate_outputs(&v));
        }
    }

    #[test]
    fn write_blif_rejects_unwritable() {
        let d = crate::DelayBounds::fixed(crate::Time::from_int(1));
        // Format-significant character in a name.
        let mut b = Netlist::builder();
        let x = b.input(".x");
        let y = b.gate(GateKind::Not, "y", vec![x], d).unwrap();
        b.output("y", y);
        let n = b.finish().unwrap();
        assert!(matches!(
            write_blif(&n, "m").unwrap_err(),
            NetlistError::Unwritable { .. }
        ));
        // Constant with a nonzero delay cannot carry a pragma.
        let mut b = Netlist::builder();
        let c = b.gate(GateKind::Const1, "one", vec![], d).unwrap();
        b.output("f", c);
        let n = b.finish().unwrap();
        assert!(matches!(
            write_blif(&n, "m").unwrap_err(),
            NetlistError::Unwritable { .. }
        ));
    }

    #[test]
    fn malformed_rows_rejected() {
        let src = ".model m\n.inputs a b\n.outputs f\n.names a b f\n1 1 1\n.end\n";
        assert!(parse_blif(src, unit_delays).is_err());
        let src2 = ".model m\n.inputs a b\n.outputs f\n.names a b f\n1x 1\n.end\n";
        assert!(parse_blif(src2, unit_delays).is_err());
        let src3 = ".model m\n.inputs a\n.outputs f\n.names a f\n1 2\n.end\n";
        assert!(parse_blif(src3, unit_delays).is_err());
    }
}
