//! A combinational BLIF subset parser.
//!
//! Supports the output of a SIS-style mapping flow: `.model`, `.inputs`,
//! `.outputs`, single-output `.names` cover tables and `.end`. Each cover
//! is synthesized as a two-level NOT/AND/OR network; latches and
//! subcircuits are rejected (the paper treats combinational logic).
//!
//! ```text
//! .model example
//! .inputs a b c
//! .outputs f
//! .names a b c f
//! 11- 1
//! --1 1
//! .end
//! ```

use std::collections::HashMap;

use crate::delay::DelayBounds;
use crate::gate::GateKind;
use crate::netlist::{Netlist, NetlistError, NodeId};

struct Cover {
    inputs: Vec<String>,
    rows: Vec<(Vec<Option<bool>>, bool)>,
    line: usize,
}

/// Parses BLIF text into a [`Netlist`], assigning the derived gates delay
/// bounds via `delay_fn(kind, fanin_count)`.
///
/// Cover tables mix on-set (`... 1`) and off-set (`... 0`) rows; a table
/// must be single-phase (all rows the same output value), which is what
/// SIS emits.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for unsupported constructs (latches,
/// subcircuits, multi-phase covers), malformed rows, cycles and dangling
/// references.
///
/// # Example
///
/// ```
/// use tbf_logic::parsers::{blif::parse_blif, unit_delays};
///
/// let src = "
/// .model mux
/// .inputs s a b
/// .outputs f
/// .names s a b f
/// 01- 1
/// 1-1 1
/// .end
/// ";
/// let n = parse_blif(src, unit_delays)?;
/// assert_eq!(n.evaluate_outputs(&[false, true, false]), vec![true]);
/// assert_eq!(n.evaluate_outputs(&[true, true, false]), vec![false]);
/// # Ok::<(), tbf_logic::NetlistError>(())
/// ```
pub fn parse_blif(
    text: &str,
    mut delay_fn: impl FnMut(GateKind, usize) -> DelayBounds,
) -> Result<Netlist, NetlistError> {
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut covers: HashMap<String, Cover> = HashMap::new();
    let mut order: Vec<String> = Vec::new();

    // Logical lines (backslash continuation), keeping 1-based numbers.
    let mut logical: Vec<(usize, String)> = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim_end();
        let (start, mut acc) = pending.take().unwrap_or((i + 1, String::new()));
        if let Some(stripped) = line.strip_suffix('\\') {
            acc.push_str(stripped);
            acc.push(' ');
            pending = Some((start, acc));
        } else {
            acc.push_str(line);
            logical.push((start, acc));
        }
    }
    if let Some((start, acc)) = pending {
        logical.push((start, acc));
    }

    let mut idx = 0usize;
    while idx < logical.len() {
        let (lineno, line) = (&logical[idx].0, logical[idx].1.trim().to_owned());
        let lineno = *lineno;
        idx += 1;
        if line.is_empty() {
            continue;
        }
        let err = |message: String| NetlistError::Parse {
            line: lineno,
            message,
        };
        let mut tokens = line.split_whitespace();
        let head = tokens.next().unwrap_or_default();
        match head {
            ".model" => {}
            ".inputs" => inputs.extend(tokens.map(str::to_owned)),
            ".outputs" => {
                for name in tokens {
                    if outputs.iter().any(|o| o == name) {
                        return Err(err(format!("duplicate output `{name}`")));
                    }
                    outputs.push(name.to_owned());
                }
            }
            ".names" => {
                let mut signals: Vec<String> = tokens.map(str::to_owned).collect();
                let target = signals
                    .pop()
                    .ok_or_else(|| err(".names with no signals".into()))?;
                let n_in = signals.len();
                let mut rows = Vec::new();
                while idx < logical.len() {
                    let (rl, row) = (logical[idx].0, logical[idx].1.trim().to_owned());
                    if row.is_empty() || row.starts_with('.') {
                        break;
                    }
                    idx += 1;
                    let parts: Vec<&str> = row.split_whitespace().collect();
                    let (pattern, value) = match (n_in, parts.as_slice()) {
                        (0, [v]) => ("", *v),
                        (_, [p, v]) => (*p, *v),
                        _ => {
                            return Err(NetlistError::Parse {
                                line: rl,
                                message: format!("malformed cover row `{row}`"),
                            })
                        }
                    };
                    if pattern.len() != n_in {
                        return Err(NetlistError::Parse {
                            line: rl,
                            message: format!(
                                "cover row has {} literals, expected {n_in}",
                                pattern.len()
                            ),
                        });
                    }
                    let lits: Vec<Option<bool>> = pattern
                        .chars()
                        .map(|c| match c {
                            '0' => Ok(Some(false)),
                            '1' => Ok(Some(true)),
                            '-' => Ok(None),
                            other => Err(NetlistError::Parse {
                                line: rl,
                                message: format!("bad literal `{other}`"),
                            }),
                        })
                        .collect::<Result<_, _>>()?;
                    let out = match value {
                        "1" => true,
                        "0" => false,
                        other => {
                            return Err(NetlistError::Parse {
                                line: rl,
                                message: format!("bad output value `{other}`"),
                            })
                        }
                    };
                    rows.push((lits, out));
                }
                if covers.contains_key(&target) {
                    return Err(NetlistError::DuplicateName(target));
                }
                if inputs.contains(&target) {
                    return Err(err(format!(
                        "`{target}` is declared in .inputs and defined by .names"
                    )));
                }
                covers.insert(
                    target.clone(),
                    Cover {
                        inputs: signals,
                        rows,
                        line: lineno,
                    },
                );
                order.push(target);
            }
            ".end" => break,
            ".latch" | ".subckt" | ".gate" | ".mlatch" => {
                return Err(err(format!("unsupported BLIF construct `{head}`")));
            }
            other => return Err(err(format!("unrecognized directive `{other}`"))),
        }
    }

    // Catch the reverse declaration order too (`.names` before a late
    // `.inputs` naming the same signal).
    for name in &inputs {
        if let Some(cover) = covers.get(name) {
            return Err(NetlistError::Parse {
                line: cover.line,
                message: format!("`{name}` is declared in .inputs and defined by .names"),
            });
        }
    }

    // Synthesize covers in dependency order.
    let mut builder = Netlist::builder();
    let mut resolved: HashMap<String, NodeId> = HashMap::new();
    for name in &inputs {
        let id = builder.try_input(name)?;
        resolved.insert(name.clone(), id);
    }
    // Kahn-style resolution loop (covers are usually few; quadratic is fine
    // and keeps cycle detection trivial).
    let mut remaining = order.clone();
    while !remaining.is_empty() {
        let ready = remaining
            .iter()
            .position(|name| covers[name].inputs.iter().all(|i| resolved.contains_key(i)));
        match ready {
            Some(p) => {
                let name = remaining.remove(p);
                let id = synth_cover(
                    &mut builder,
                    &name,
                    &covers[&name],
                    &resolved,
                    &mut delay_fn,
                )?;
                resolved.insert(name, id);
            }
            None => {
                // Nothing progressed: cycle or dangling reference.
                let name = &remaining[0];
                let cover = &covers[name];
                let missing = cover
                    .inputs
                    .iter()
                    .find(|i| !resolved.contains_key(*i) && !covers.contains_key(*i));
                return Err(match missing {
                    Some(m) => NetlistError::UnknownNode(m.clone()),
                    None => NetlistError::Parse {
                        line: cover.line,
                        message: format!("combinational cycle through `{name}`"),
                    },
                });
            }
        }
    }

    for name in &outputs {
        let id = resolved
            .get(name)
            .copied()
            .ok_or_else(|| NetlistError::UnknownNode(name.clone()))?;
        builder.try_output(name, id)?;
    }
    builder.finish()
}

fn synth_cover(
    builder: &mut crate::netlist::NetlistBuilder,
    name: &str,
    cover: &Cover,
    resolved: &HashMap<String, NodeId>,
    delay_fn: &mut impl FnMut(GateKind, usize) -> DelayBounds,
) -> Result<NodeId, NetlistError> {
    // Constant covers.
    if cover.rows.is_empty() {
        return builder.gate(GateKind::Const0, name, vec![], DelayBounds::ZERO);
    }
    let phase = cover.rows[0].1;
    if cover.rows.iter().any(|(_, p)| *p != phase) {
        return Err(NetlistError::Parse {
            line: cover.line,
            message: format!("mixed-phase cover for `{name}`"),
        });
    }
    if cover.inputs.is_empty() {
        let kind = if phase {
            GateKind::Const1
        } else {
            GateKind::Const0
        };
        return builder.gate(kind, name, vec![], DelayBounds::ZERO);
    }

    // Build one product per row, OR them, invert for off-set covers.
    let mut products = Vec::new();
    for (r, (lits, _)) in cover.rows.iter().enumerate() {
        let mut terms = Vec::new();
        for (i, lit) in lits.iter().enumerate() {
            // The resolution loop only schedules fully-resolved covers,
            // but a typed error beats a panic if that invariant slips.
            let src = *resolved
                .get(&cover.inputs[i])
                .ok_or_else(|| NetlistError::UnknownNode(cover.inputs[i].clone()))?;
            match lit {
                None => {}
                Some(true) => terms.push(src),
                Some(false) => {
                    let inv_name = format!("{name}__r{r}_n{i}");
                    let inv = match builder.find(&inv_name) {
                        Some(id) => id,
                        None => builder.gate(
                            GateKind::Not,
                            &inv_name,
                            vec![src],
                            delay_fn(GateKind::Not, 1),
                        )?,
                    };
                    terms.push(inv);
                }
            }
        }
        let product = match terms.len() {
            0 => builder.gate(
                GateKind::Const1,
                &format!("{name}__r{r}"),
                vec![],
                DelayBounds::ZERO,
            )?,
            1 => terms[0],
            n => builder.gate(
                GateKind::And,
                &format!("{name}__r{r}"),
                terms,
                delay_fn(GateKind::And, n),
            )?,
        };
        products.push(product);
    }
    let sum = match products.len() {
        1 => products[0],
        n => builder.gate(
            GateKind::Or,
            &format!("{name}__sum"),
            products,
            delay_fn(GateKind::Or, n),
        )?,
    };
    if phase {
        // Name the node: if `sum` already is a reused node (single product
        // single literal), add a zero-delay buffer carrying the name.
        builder.gate(GateKind::Buf, name, vec![sum], DelayBounds::ZERO)
    } else {
        builder.gate(GateKind::Not, name, vec![sum], delay_fn(GateKind::Not, 1))
    }
}

/// Serializes a netlist to combinational BLIF.
///
/// Every gate becomes a single-output `.names` cover; `MAJ`/`MUX` expand
/// to their sum-of-products covers; constants become constant covers.
/// Delay bounds are not part of the format.
///
/// # Example
///
/// ```
/// use tbf_logic::parsers::blif::{parse_blif, write_blif};
/// use tbf_logic::parsers::unit_delays;
///
/// let src = ".model m\n.inputs a b\n.outputs f\n.names a b f\n11 1\n.end\n";
/// let n = parse_blif(src, unit_delays)?;
/// let round = parse_blif(&write_blif(&n, "m"), unit_delays)?;
/// assert_eq!(round.evaluate_outputs(&[true, true]), vec![true]);
/// # Ok::<(), tbf_logic::NetlistError>(())
/// ```
pub fn write_blif(netlist: &Netlist, model: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, ".model {model}");
    let input_names: Vec<&str> = netlist
        .inputs()
        .iter()
        .map(|&i| netlist.node(i).name())
        .collect();
    let _ = writeln!(out, ".inputs {}", input_names.join(" "));
    let output_names: Vec<&str> = netlist.outputs().iter().map(|(n, _)| n.as_str()).collect();
    let _ = writeln!(out, ".outputs {}", output_names.join(" "));

    let emit_cover = |out: &mut String, fanins: &[&str], target: &str, rows: &[(&str, &str)]| {
        let _ = writeln!(out, ".names {} {target}", fanins.join(" "));
        for (pattern, value) in rows {
            if pattern.is_empty() {
                let _ = writeln!(out, "{value}");
            } else {
                let _ = writeln!(out, "{pattern} {value}");
            }
        }
    };

    for (_, node) in netlist.nodes() {
        let kind = node.kind();
        let fanins: Vec<&str> = node
            .fanins()
            .iter()
            .map(|f| netlist.node(*f).name())
            .collect();
        let name = node.name();
        let n = fanins.len();
        let all_ones = "1".repeat(n);
        match kind {
            GateKind::Input => continue,
            GateKind::Const0 => emit_cover(&mut out, &[], name, &[]),
            GateKind::Const1 => emit_cover(&mut out, &[], name, &[("", "1")]),
            GateKind::Buf => emit_cover(&mut out, &fanins, name, &[("1", "1")]),
            GateKind::Not => emit_cover(&mut out, &fanins, name, &[("0", "1")]),
            GateKind::And => emit_cover(&mut out, &fanins, name, &[(&all_ones, "1")]),
            GateKind::Nand => emit_cover(&mut out, &fanins, name, &[(&all_ones, "0")]),
            GateKind::Or | GateKind::Nor => {
                let value = if kind == GateKind::Or { "1" } else { "0" };
                let rows: Vec<String> = (0..n)
                    .map(|i| {
                        let mut p = vec!['-'; n];
                        p[i] = '1';
                        p.into_iter().collect()
                    })
                    .collect();
                let refs: Vec<(&str, &str)> = rows.iter().map(|p| (p.as_str(), value)).collect();
                emit_cover(&mut out, &fanins, name, &refs);
            }
            GateKind::Xor | GateKind::Xnor => {
                // Odd-parity (or even-parity) minterms, explicit.
                let want_odd = kind == GateKind::Xor;
                let rows: Vec<String> = (0..(1usize << n))
                    .filter(|m| (m.count_ones() as usize % 2 == 1) == want_odd)
                    .map(|m| {
                        (0..n)
                            .map(|i| if (m >> i) & 1 == 1 { '1' } else { '0' })
                            .collect()
                    })
                    .collect();
                let refs: Vec<(&str, &str)> = rows.iter().map(|p| (p.as_str(), "1")).collect();
                emit_cover(&mut out, &fanins, name, &refs);
            }
            GateKind::Maj => emit_cover(
                &mut out,
                &fanins,
                name,
                &[("11-", "1"), ("1-1", "1"), ("-11", "1")],
            ),
            GateKind::Mux => emit_cover(&mut out, &fanins, name, &[("01-", "1"), ("1-1", "1")]),
        }
    }
    // Alias covers for outputs whose name differs from the driver's.
    for (alias, id) in netlist.outputs() {
        let driver = netlist.node(*id).name();
        if driver != alias {
            let _ = writeln!(out, ".names {driver} {alias}\n1 1");
        }
    }
    let _ = writeln!(out, ".end");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parsers::unit_delays;

    #[test]
    fn parses_two_level_cover() {
        let src = "
.model m
.inputs a b c
.outputs f
.names a b c f
11- 1
--1 1
.end
";
        let n = parse_blif(src, unit_delays).unwrap();
        for i in 0..8u8 {
            let a = [(i & 1) != 0, (i & 2) != 0, (i & 4) != 0];
            let expect = (a[0] && a[1]) || a[2];
            assert_eq!(n.evaluate_outputs(&a), vec![expect], "{a:?}");
        }
    }

    #[test]
    fn off_set_cover_inverts() {
        let src = "
.model m
.inputs a b
.outputs f
.names a b f
11 0
.end
";
        let n = parse_blif(src, unit_delays).unwrap();
        // f = !(a·b) = NAND.
        assert_eq!(n.evaluate_outputs(&[true, true]), vec![false]);
        assert_eq!(n.evaluate_outputs(&[true, false]), vec![true]);
    }

    #[test]
    fn negative_literals() {
        let src = "
.model m
.inputs a b
.outputs f
.names a b f
01 1
.end
";
        let n = parse_blif(src, unit_delays).unwrap();
        // f = !a · b.
        assert_eq!(n.evaluate_outputs(&[false, true]), vec![true]);
        assert_eq!(n.evaluate_outputs(&[true, true]), vec![false]);
    }

    #[test]
    fn constant_covers() {
        let src = "
.model m
.inputs a
.outputs one zero buf
.names one
1
.names zero
.names a buf
1 1
.end
";
        let n = parse_blif(src, unit_delays).unwrap();
        assert_eq!(n.evaluate_outputs(&[false]), vec![true, false, false]);
        assert_eq!(n.evaluate_outputs(&[true]), vec![true, false, true]);
    }

    #[test]
    fn chained_covers_resolve_in_any_order() {
        let src = "
.model m
.inputs a
.outputs f
.names g f
1 1
.names a g
0 1
.end
";
        let n = parse_blif(src, unit_delays).unwrap();
        // f = g = !a.
        assert_eq!(n.evaluate_outputs(&[false]), vec![true]);
        assert_eq!(n.evaluate_outputs(&[true]), vec![false]);
    }

    #[test]
    fn continuation_lines() {
        let src = ".model m\n.inputs a \\\nb\n.outputs f\n.names a b f\n11 1\n.end\n";
        let n = parse_blif(src, unit_delays).unwrap();
        assert_eq!(n.inputs().len(), 2);
        assert_eq!(n.evaluate_outputs(&[true, true]), vec![true]);
    }

    #[test]
    fn latch_rejected() {
        let src = ".model m\n.inputs a\n.outputs q\n.latch a q re clk 0\n.end\n";
        let err = parse_blif(src, unit_delays).unwrap_err();
        assert!(err.to_string().contains(".latch"), "{err}");
    }

    #[test]
    fn mixed_phase_cover_rejected() {
        let src = "
.model m
.inputs a
.outputs f
.names a f
1 1
0 0
.end
";
        let err = parse_blif(src, unit_delays).unwrap_err();
        assert!(err.to_string().contains("mixed-phase"), "{err}");
    }

    #[test]
    fn cycle_rejected() {
        let src = "
.model m
.inputs a
.outputs f
.names g f
1 1
.names f g
1 1
.end
";
        let err = parse_blif(src, unit_delays).unwrap_err();
        assert!(err.to_string().contains("cycle"), "{err}");
    }

    #[test]
    fn dangling_reference_rejected() {
        let src = "
.model m
.inputs a
.outputs f
.names ghost f
1 1
.end
";
        let err = parse_blif(src, unit_delays).unwrap_err();
        assert!(matches!(err, NetlistError::UnknownNode(n) if n == "ghost"));
    }

    #[test]
    fn hostile_inputs_yield_typed_errors() {
        // (source, substring the error must mention) — every case must
        // fail with a typed `NetlistError`, never a panic or a silently
        // wrong netlist.
        let cases: &[(&str, &str)] = &[
            (
                ".model m\n.inputs a\n.outputs f f\n.names a f\n1 1\n.end\n",
                "duplicate output",
            ),
            (
                ".model m\n.inputs a\n.outputs f\n.outputs f\n.names a f\n1 1\n.end\n",
                "duplicate output",
            ),
            (
                ".model m\n.inputs a\n.outputs a\n.names a\n1\n.end\n",
                ".inputs and defined",
            ),
            (
                ".model m\n.outputs a\n.names a\n1\n.inputs a\n.end\n",
                ".inputs and defined",
            ),
            (
                ".model m\n.inputs a\n.outputs f\n.names f\n1\n.names f\n0\n.end\n",
                "duplicate node name",
            ),
            (
                ".model m\n.inputs a\n.outputs f\n.names\n.end\n",
                "no signals",
            ),
        ];
        for (src, needle) in cases {
            let err = parse_blif(src, unit_delays).expect_err(src);
            assert!(
                err.to_string().contains(needle),
                "source {src:?}: expected error mentioning {needle:?}, got `{err}`"
            );
        }
    }

    #[test]
    fn output_may_alias_an_input() {
        let src = ".model m\n.inputs a\n.outputs a f\n.names a f\n0 1\n.end\n";
        let n = parse_blif(src, unit_delays).unwrap();
        assert_eq!(n.evaluate_outputs(&[true]), vec![true, false]);
        assert_eq!(n.evaluate_outputs(&[false]), vec![false, true]);
    }

    #[test]
    fn crlf_and_trailing_whitespace_accepted() {
        let src = ".model m\r\n.inputs a b  \r\n.outputs f\t\r\n.names a b f\r\n11 1  \r\n.end\r\n";
        let n = parse_blif(src, unit_delays).unwrap();
        assert_eq!(n.inputs().len(), 2);
        assert_eq!(n.evaluate_outputs(&[true, true]), vec![true]);
    }

    #[test]
    fn write_blif_round_trips() {
        use crate::generators::adders::paper_bypass_adder;
        let n = paper_bypass_adder();
        let text = write_blif(&n, "bypass");
        let round = parse_blif(&text, unit_delays).unwrap();
        for bits in 0..512u32 {
            let v: Vec<bool> = (0..9).map(|i| (bits >> i) & 1 == 1).collect();
            assert_eq!(
                round.evaluate_outputs(&v),
                n.evaluate_outputs(&v),
                "{bits:#b}"
            );
        }
    }

    #[test]
    fn write_blif_handles_all_kinds() {
        let mut b = Netlist::builder();
        let x = b.input("x");
        let y = b.input("y");
        let z = b.input("z");
        let d = crate::DelayBounds::fixed(crate::Time::from_int(1));
        let gates = [
            (GateKind::And, vec![x, y]),
            (GateKind::Or, vec![x, y, z]),
            (GateKind::Nand, vec![x, y]),
            (GateKind::Nor, vec![x, z]),
            (GateKind::Xor, vec![x, y, z]),
            (GateKind::Xnor, vec![x, y]),
            (GateKind::Not, vec![x]),
            (GateKind::Buf, vec![z]),
            (GateKind::Maj, vec![x, y, z]),
            (GateKind::Mux, vec![x, y, z]),
        ];
        let mut ids = Vec::new();
        for (i, (k, f)) in gates.iter().enumerate() {
            ids.push(b.gate(*k, &format!("k{i}"), f.clone(), d).unwrap());
        }
        let c0 = b
            .gate(GateKind::Const0, "c0", vec![], crate::DelayBounds::ZERO)
            .unwrap();
        let c1 = b
            .gate(GateKind::Const1, "c1", vec![], crate::DelayBounds::ZERO)
            .unwrap();
        ids.extend([c0, c1]);
        for (i, id) in ids.iter().enumerate() {
            b.output(&format!("o{i}"), *id);
        }
        let n = b.finish().unwrap();
        let round = parse_blif(&write_blif(&n, "kinds"), unit_delays).unwrap();
        for bits in 0..8u32 {
            let v: Vec<bool> = (0..3).map(|i| (bits >> i) & 1 == 1).collect();
            assert_eq!(round.evaluate_outputs(&v), n.evaluate_outputs(&v));
        }
    }

    #[test]
    fn malformed_rows_rejected() {
        let src = ".model m\n.inputs a b\n.outputs f\n.names a b f\n1 1 1\n.end\n";
        assert!(parse_blif(src, unit_delays).is_err());
        let src2 = ".model m\n.inputs a b\n.outputs f\n.names a b f\n1x 1\n.end\n";
        assert!(parse_blif(src2, unit_delays).is_err());
        let src3 = ".model m\n.inputs a\n.outputs f\n.names a f\n1 2\n.end\n";
        assert!(parse_blif(src3, unit_delays).is_err());
    }
}
