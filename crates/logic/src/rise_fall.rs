//! Separate rising/falling delay modeling (paper §4.1, Figure 3).
//!
//! A buffer whose rising delay `τᵣ` differs from its falling delay `τ_f`
//! is expressed with plain single-delay gates:
//!
//! * `τᵣ > τ_f`:  `y(t) = x(t−τᵣ) · x(t−τ_f)` — an AND of two delayed
//!   copies (the output rises only when the *later* copy has risen),
//! * `τᵣ < τ_f`:  `y(t) = x(t−τᵣ) + x(t−τ_f)` — an OR of the copies,
//! * `τᵣ = τ_f`:  an ordinary buffer.
//!
//! A gate with per-input rise/fall delays is modeled by inserting such a
//! buffer on each input and giving the functional block zero delay. The
//! construction propagates pulse shrinkage/dilation exactly as the paper
//! describes: a pulse narrows by `|τᵣ − τ_f|` per stage with `τᵣ > τ_f`.

use crate::delay::{DelayBounds, Time};
use crate::gate::GateKind;
use crate::netlist::{NetlistBuilder, NetlistError, NodeId};

/// Inserts the Figure-3 construction for a buffer with distinct rise and
/// fall delays, returning the output node.
///
/// The two delayed copies get *fixed* delays `τᵣ` and `τ_f`; the merging
/// gate (if any) has zero delay.
///
/// # Errors
///
/// Propagates [`NetlistError`] from the builder (duplicate `prefix`).
///
/// # Example
///
/// ```
/// use tbf_logic::{Netlist, Time};
/// use tbf_logic::rise_fall::rise_fall_buffer;
///
/// let mut b = Netlist::builder();
/// let x = b.input("x");
/// let y = rise_fall_buffer(&mut b, x, Time::from_int(2), Time::from_int(1), "rf")?;
/// b.output("y", y);
/// let n = b.finish()?;
/// // Statically the construction is the identity.
/// assert_eq!(n.evaluate_outputs(&[true]), vec![true]);
/// assert_eq!(n.evaluate_outputs(&[false]), vec![false]);
/// # Ok::<(), tbf_logic::NetlistError>(())
/// ```
pub fn rise_fall_buffer(
    builder: &mut NetlistBuilder,
    from: NodeId,
    rise: Time,
    fall: Time,
    prefix: &str,
) -> Result<NodeId, NetlistError> {
    if rise == fall {
        return builder.gate(GateKind::Buf, prefix, vec![from], DelayBounds::fixed(rise));
    }
    let slow = builder.gate(
        GateKind::Buf,
        &format!("{prefix}_r"),
        vec![from],
        DelayBounds::fixed(rise),
    )?;
    let fast = builder.gate(
        GateKind::Buf,
        &format!("{prefix}_f"),
        vec![from],
        DelayBounds::fixed(fall),
    )?;
    let merge_kind = if rise > fall {
        GateKind::And
    } else {
        GateKind::Or
    };
    builder.gate(merge_kind, prefix, vec![slow, fast], DelayBounds::ZERO)
}

/// Builds a gate whose every input has its own rise/fall delay pair
/// (Figure 3(b)): each input goes through [`rise_fall_buffer`] and the
/// functional gate itself has zero delay.
///
/// # Errors
///
/// Propagates builder errors (arity, duplicate names).
pub fn gate_with_rise_fall(
    builder: &mut NetlistBuilder,
    kind: GateKind,
    name: &str,
    inputs: &[(NodeId, Time, Time)],
) -> Result<NodeId, NetlistError> {
    let mut buffered = Vec::with_capacity(inputs.len());
    for (i, &(node, rise, fall)) in inputs.iter().enumerate() {
        let b = rise_fall_buffer(builder, node, rise, fall, &format!("{name}_in{i}"))?;
        buffered.push(b);
    }
    builder.gate(kind, name, buffered, DelayBounds::ZERO)
}

/// Builds a chain of `stages` rise/fall buffers (each `rise > fall` by
/// `shrink` units), the canonical pulse-shrinkage testbench of §4.1.
///
/// # Errors
///
/// Propagates builder errors.
pub fn pulse_shrinkage_chain(
    builder: &mut NetlistBuilder,
    from: NodeId,
    stages: usize,
    base: Time,
    shrink: Time,
    prefix: &str,
) -> Result<NodeId, NetlistError> {
    let mut cur = from;
    for s in 0..stages {
        cur = rise_fall_buffer(builder, cur, base + shrink, base, &format!("{prefix}_s{s}"))?;
    }
    Ok(cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;

    fn t(x: i64) -> Time {
        Time::from_int(x)
    }

    #[test]
    fn equal_delays_collapse_to_buffer() {
        let mut b = Netlist::builder();
        let x = b.input("x");
        let y = rise_fall_buffer(&mut b, x, t(3), t(3), "rf").unwrap();
        b.output("y", y);
        let n = b.finish().unwrap();
        assert_eq!(n.gate_count(), 1);
        assert_eq!(n.node(y).kind(), GateKind::Buf);
        assert_eq!(n.node(y).delay(), DelayBounds::fixed(t(3)));
    }

    #[test]
    fn slow_rise_uses_and() {
        let mut b = Netlist::builder();
        let x = b.input("x");
        let y = rise_fall_buffer(&mut b, x, t(2), t(1), "rf").unwrap();
        b.output("y", y);
        let n = b.finish().unwrap();
        assert_eq!(n.node(y).kind(), GateKind::And);
        // Static identity.
        assert_eq!(n.evaluate_outputs(&[true]), vec![true]);
        assert_eq!(n.evaluate_outputs(&[false]), vec![false]);
        // Topological delay = slower arc.
        assert_eq!(n.topological_delay(), t(2));
    }

    #[test]
    fn slow_fall_uses_or() {
        let mut b = Netlist::builder();
        let x = b.input("x");
        let y = rise_fall_buffer(&mut b, x, t(1), t(4), "rf").unwrap();
        b.output("y", y);
        let n = b.finish().unwrap();
        assert_eq!(n.node(y).kind(), GateKind::Or);
        assert_eq!(n.evaluate_outputs(&[true]), vec![true]);
        assert_eq!(n.evaluate_outputs(&[false]), vec![false]);
        assert_eq!(n.topological_delay(), t(4));
    }

    #[test]
    fn paper_or_gate_example() {
        // Figure 3(b): OR with input 1 (rise 1, fall 2), input 2
        // (rise 4, fall 3).
        let mut b = Netlist::builder();
        let x1 = b.input("x1");
        let x2 = b.input("x2");
        let g = gate_with_rise_fall(
            &mut b,
            GateKind::Or,
            "g",
            &[(x1, t(1), t(2)), (x2, t(4), t(3))],
        )
        .unwrap();
        b.output("y", g);
        let n = b.finish().unwrap();
        // Input 1: rise < fall → OR merge; input 2: rise > fall → AND.
        // Static function is still OR(x1, x2).
        for i in 0..4u8 {
            let a = [(i & 1) != 0, (i & 2) != 0];
            assert_eq!(n.evaluate_outputs(&a), vec![a[0] || a[1]], "{a:?}");
        }
        assert_eq!(n.topological_delay(), t(4));
    }

    #[test]
    fn shrinkage_chain_static_identity() {
        let mut b = Netlist::builder();
        let x = b.input("x");
        let y = pulse_shrinkage_chain(&mut b, x, 5, t(2), t(1), "c").unwrap();
        b.output("y", y);
        let n = b.finish().unwrap();
        assert_eq!(n.evaluate_outputs(&[true]), vec![true]);
        assert_eq!(n.evaluate_outputs(&[false]), vec![false]);
        // Each stage contributes its slower (rising) arc: 5 × 3.
        assert_eq!(n.topological_delay(), t(15));
    }
}
