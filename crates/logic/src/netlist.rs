//! The immutable gate-level netlist and its builder.

use std::collections::HashMap;
use std::fmt;

use crate::delay::DelayBounds;
use crate::gate::GateKind;

/// Index of a node inside a [`Netlist`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Zero-based position of the node (topological by construction).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One gate (or primary input) of a netlist.
#[derive(Clone, Debug)]
pub struct Node {
    pub(crate) name: String,
    pub(crate) kind: GateKind,
    pub(crate) fanins: Vec<NodeId>,
    pub(crate) delay: DelayBounds,
}

impl Node {
    /// The node's name (unique within the netlist).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The gate kind.
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// The fanin nodes, in pin order.
    pub fn fanins(&self) -> &[NodeId] {
        &self.fanins
    }

    /// The delay bounds of this gate (zero for inputs and constants).
    pub fn delay(&self) -> DelayBounds {
        self.delay
    }
}

/// Errors from netlist construction and parsing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetlistError {
    /// A gate was declared with an arity its kind does not allow.
    BadArity {
        /// The offending node's name.
        name: String,
        /// Its kind.
        kind: GateKind,
        /// The number of fanins supplied.
        arity: usize,
    },
    /// Two nodes share a name.
    DuplicateName(String),
    /// An output or fanin references an unknown node name.
    UnknownNode(String),
    /// The netlist has no primary output.
    NoOutputs,
    /// A parse error with a line number and message.
    Parse {
        /// 1-based source line.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// A netlist cannot be expressed by the requested writer.
    Unwritable {
        /// The node or output name that blocked serialization.
        name: String,
        /// Why it cannot be written.
        detail: String,
    },
    /// A netlist file could not be read.
    Io {
        /// The path that failed.
        path: String,
        /// The underlying I/O error, stringified.
        detail: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::BadArity { name, kind, arity } => {
                write!(f, "gate `{name}` of kind {kind} cannot take {arity} fanins")
            }
            NetlistError::DuplicateName(n) => write!(f, "duplicate node name `{n}`"),
            NetlistError::UnknownNode(n) => write!(f, "reference to unknown node `{n}`"),
            NetlistError::NoOutputs => write!(f, "netlist has no primary outputs"),
            NetlistError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            NetlistError::Unwritable { name, detail } => {
                write!(f, "cannot serialize `{name}`: {detail}")
            }
            NetlistError::Io { path, detail } => {
                write!(f, "cannot read `{path}`: {detail}")
            }
        }
    }
}

impl std::error::Error for NetlistError {}

/// An immutable combinational netlist: a DAG of gates in topological
/// order, with named primary inputs and outputs and per-gate delay bounds.
///
/// Construct with [`Netlist::builder`], a [parser](crate::parsers), or a
/// [generator](crate::generators).
#[derive(Clone, Debug)]
pub struct Netlist {
    pub(crate) nodes: Vec<Node>,
    pub(crate) inputs: Vec<NodeId>,
    pub(crate) outputs: Vec<(String, NodeId)>,
    pub(crate) fanouts: Vec<Vec<NodeId>>,
}

impl Netlist {
    /// Starts building a netlist.
    pub fn builder() -> NetlistBuilder {
        NetlistBuilder {
            nodes: Vec::new(),
            names: HashMap::new(),
            outputs: Vec::new(),
        }
    }

    /// All nodes in topological order (fanins precede fanouts).
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// The node payload for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this netlist.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Number of nodes (inputs + gates).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the netlist has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of gates (nodes that are neither inputs nor constants).
    pub fn gate_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| !n.kind.is_input() && !n.kind.is_constant())
            .count()
    }

    /// Primary inputs, in declaration order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Primary outputs as `(name, node)`, in declaration order.
    pub fn outputs(&self) -> &[(String, NodeId)] {
        &self.outputs
    }

    /// The fanout nodes of `id`.
    pub fn fanouts(&self, id: NodeId) -> &[NodeId] {
        &self.fanouts[id.index()]
    }

    /// Looks a node up by name.
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.name == name)
            .map(|i| NodeId(i as u32))
    }

    /// The position of `id` within the primary-input list, if it is one.
    pub fn input_position(&self, id: NodeId) -> Option<usize> {
        self.inputs.iter().position(|&i| i == id)
    }

    /// Evaluates the static (settled, `t = ∞`) function of every node
    /// under the given primary-input assignment (indexed like
    /// [`inputs`](Self::inputs)).
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != self.inputs().len()`.
    pub fn evaluate(&self, assignment: &[bool]) -> Vec<bool> {
        assert_eq!(
            assignment.len(),
            self.inputs.len(),
            "assignment arity mismatch"
        );
        let mut values = vec![false; self.nodes.len()];
        let mut input_pos = 0usize;
        let mut scratch = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            values[i] = match node.kind {
                GateKind::Input => {
                    let v = assignment[input_pos];
                    input_pos += 1;
                    v
                }
                kind => {
                    scratch.clear();
                    scratch.extend(node.fanins.iter().map(|f| values[f.index()]));
                    kind.eval(&scratch)
                }
            };
        }
        values
    }

    /// Evaluates only the primary outputs under an input assignment.
    pub fn evaluate_outputs(&self, assignment: &[bool]) -> Vec<bool> {
        let values = self.evaluate(assignment);
        self.outputs
            .iter()
            .map(|(_, id)| values[id.index()])
            .collect()
    }

    /// A canonical byte encoding of everything the delay engines read:
    /// node kinds, fanin wiring, scaled delay bounds, the primary-input
    /// list, and output names. Internal gate names are deliberately
    /// *excluded*, so two netlists that differ only in node naming get
    /// the same signature.
    ///
    /// Two netlists with equal signatures produce byte-identical analysis
    /// reports under equal options, which makes the signature a sound key
    /// for result caches (the long-running service keys its warm
    /// per-cone cache on it). Keying on the full byte string — rather
    /// than a hash of it — rules out collisions entirely.
    ///
    /// # Example
    ///
    /// ```
    /// use tbf_logic::generators::adders::paper_bypass_adder;
    /// let a = paper_bypass_adder();
    /// assert_eq!(a.structural_signature(), paper_bypass_adder().structural_signature());
    /// ```
    pub fn structural_signature(&self) -> Vec<u8> {
        // Version tag: bump if the encoding ever changes, so persisted
        // keys from older encodings can never alias new ones.
        let mut sig = vec![b'N', 1u8];
        let push_usize = |sig: &mut Vec<u8>, v: usize| {
            sig.extend_from_slice(&(v as u64).to_le_bytes());
        };
        push_usize(&mut sig, self.nodes.len());
        for node in &self.nodes {
            // GateKind is #[derive(Clone, Copy)] fieldless: its
            // discriminant is a stable small integer per variant order.
            sig.push(node.kind as u8);
            push_usize(&mut sig, node.fanins.len());
            for f in &node.fanins {
                sig.extend_from_slice(&f.0.to_le_bytes());
            }
            sig.extend_from_slice(&node.delay.min.scaled().to_le_bytes());
            sig.extend_from_slice(&node.delay.max.scaled().to_le_bytes());
        }
        push_usize(&mut sig, self.inputs.len());
        for i in &self.inputs {
            sig.extend_from_slice(&i.0.to_le_bytes());
        }
        push_usize(&mut sig, self.outputs.len());
        for (name, id) in &self.outputs {
            push_usize(&mut sig, name.len());
            sig.extend_from_slice(name.as_bytes());
            sig.extend_from_slice(&id.0.to_le_bytes());
        }
        sig
    }

    /// The structural signature of one output's fanin cone: the
    /// [`structural_signature`](Self::structural_signature) of the
    /// [`extract_cone_slice`](crate::transform::extract_cone_slice)
    /// netlist for `output_index`, under a distinct version tag so cone
    /// keys can never alias whole-netlist keys.
    ///
    /// Everything the per-cone delay engines read is inside the slice —
    /// gate kinds, fanin wiring, scaled delay annotations, the output
    /// name — and nothing outside it is, so the key has exactly the
    /// invalidation granularity an incremental (ECO) engine needs: an
    /// edit inside the cone always changes the signature, an edit
    /// outside it never does, and node renames or id shifts from
    /// unrelated edits are invisible (the slice renumbers its nodes in
    /// canonical ascending source order).
    ///
    /// # Panics
    ///
    /// Panics if `output_index` is out of range, like
    /// [`extract_cone_slice`](crate::transform::extract_cone_slice).
    ///
    /// # Example
    ///
    /// ```
    /// use tbf_logic::generators::adders::paper_bypass_adder;
    /// let a = paper_bypass_adder();
    /// let b = paper_bypass_adder();
    /// for i in 0..a.outputs().len() {
    ///     assert_eq!(a.cone_signature(i), b.cone_signature(i));
    /// }
    /// ```
    pub fn cone_signature(&self, output_index: usize) -> Vec<u8> {
        let slice = crate::transform::extract_cone_slice(self, output_index);
        // Distinct version tag (vs `[b'N', 1]`): a cone key and a
        // whole-netlist key must never collide even for a single-output
        // netlist that is its own cone.
        let mut sig = vec![b'C', 1u8];
        sig.extend_from_slice(&slice.netlist.structural_signature());
        sig
    }

    /// Returns a copy with every gate's delay bounds replaced by
    /// `f(current)` — e.g. to impose `dmin = 0.9·dmax` (paper §12) or the
    /// unbounded model. Inputs keep zero delay.
    pub fn map_delays(&self, mut f: impl FnMut(DelayBounds) -> DelayBounds) -> Netlist {
        let mut out = self.clone();
        for node in out.nodes.iter_mut() {
            if !node.kind.is_input() && !node.kind.is_constant() {
                node.delay = f(node.delay);
            }
        }
        out
    }
}

/// Incremental builder for [`Netlist`]. Nodes must be added before they
/// are referenced, which makes the node list topological by construction
/// and acyclicity structural.
#[derive(Debug)]
pub struct NetlistBuilder {
    nodes: Vec<Node>,
    names: HashMap<String, NodeId>,
    outputs: Vec<(String, NodeId)>,
}

impl NetlistBuilder {
    /// Declares a primary input.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names (inputs are the caller's fixed interface;
    /// a duplicate is a programming error, unlike parsed gate soup).
    pub fn input(&mut self, name: &str) -> NodeId {
        self.try_input(name)
            .unwrap_or_else(|e| panic!("input `{name}`: {e}"))
    }

    /// Fallible [`input`](Self::input) for parser use.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] if the name is taken.
    pub fn try_input(&mut self, name: &str) -> Result<NodeId, NetlistError> {
        self.push(name, GateKind::Input, Vec::new(), DelayBounds::ZERO)
    }

    /// Adds a gate with the given fanins and delay bounds.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadArity`] for an invalid fanin count and
    /// [`NetlistError::DuplicateName`] for a name collision.
    pub fn gate(
        &mut self,
        kind: GateKind,
        name: &str,
        fanins: Vec<NodeId>,
        delay: DelayBounds,
    ) -> Result<NodeId, NetlistError> {
        if kind.is_input() || !kind.valid_arity(fanins.len()) {
            return Err(NetlistError::BadArity {
                name: name.to_owned(),
                kind,
                arity: fanins.len(),
            });
        }
        for f in &fanins {
            assert!(f.index() < self.nodes.len(), "fanin from another netlist");
        }
        self.push(name, kind, fanins, delay)
    }

    /// Marks `node` as the primary output `name`.
    ///
    /// Does not check for duplicate output names — generator code owns
    /// its naming. Parsers consuming untrusted text should use
    /// [`try_output`](Self::try_output) instead: two outputs sharing a
    /// name would make per-output reports ambiguous.
    pub fn output(&mut self, name: &str, node: NodeId) {
        self.outputs.push((name.to_owned(), node));
    }

    /// Fallible [`output`](Self::output) for parser use.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] if an output of this name
    /// was already declared.
    pub fn try_output(&mut self, name: &str, node: NodeId) -> Result<(), NetlistError> {
        if self.outputs.iter().any(|(n, _)| n == name) {
            return Err(NetlistError::DuplicateName(name.to_owned()));
        }
        self.outputs.push((name.to_owned(), node));
        Ok(())
    }

    /// Looks up a previously added node by name.
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.names.get(name).copied()
    }

    /// Number of nodes added so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if nothing has been added.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(
        &mut self,
        name: &str,
        kind: GateKind,
        fanins: Vec<NodeId>,
        delay: DelayBounds,
    ) -> Result<NodeId, NetlistError> {
        if self.names.contains_key(name) {
            return Err(NetlistError::DuplicateName(name.to_owned()));
        }
        let id = NodeId(u32::try_from(self.nodes.len()).expect("netlist too large"));
        self.names.insert(name.to_owned(), id);
        self.nodes.push(Node {
            name: name.to_owned(),
            kind,
            fanins,
            delay,
        });
        Ok(id)
    }

    /// Finalizes the netlist.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::NoOutputs`] if no output was declared.
    pub fn finish(self) -> Result<Netlist, NetlistError> {
        if self.outputs.is_empty() {
            return Err(NetlistError::NoOutputs);
        }
        let mut fanouts = vec![Vec::new(); self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            for f in &node.fanins {
                fanouts[f.index()].push(NodeId(i as u32));
            }
        }
        let inputs = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.kind.is_input())
            .map(|(i, _)| NodeId(i as u32))
            .collect();
        Ok(Netlist {
            nodes: self.nodes,
            inputs,
            outputs: self.outputs,
            fanouts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::Time;

    fn d(lo: i64, hi: i64) -> DelayBounds {
        DelayBounds::new(Time::from_int(lo), Time::from_int(hi))
    }

    fn tiny() -> Netlist {
        // f = (a NAND b) OR c
        let mut b = Netlist::builder();
        let a = b.input("a");
        let bb = b.input("b");
        let c = b.input("c");
        let g1 = b.gate(GateKind::Nand, "g1", vec![a, bb], d(1, 2)).unwrap();
        let g2 = b.gate(GateKind::Or, "g2", vec![g1, c], d(1, 1)).unwrap();
        b.output("f", g2);
        b.finish().unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let n = tiny();
        assert_eq!(n.len(), 5);
        assert_eq!(n.gate_count(), 2);
        assert_eq!(n.inputs().len(), 3);
        assert_eq!(n.outputs().len(), 1);
        assert_eq!(n.outputs()[0].0, "f");
        let g1 = n.find("g1").unwrap();
        assert_eq!(n.node(g1).kind(), GateKind::Nand);
        assert_eq!(n.node(g1).fanins().len(), 2);
        assert_eq!(n.node(g1).delay(), d(1, 2));
        assert_eq!(n.node(g1).name(), "g1");
        assert!(n.find("nope").is_none());
        assert!(!n.is_empty());
    }

    #[test]
    fn fanouts_are_inverse_of_fanins() {
        let n = tiny();
        let a = n.find("a").unwrap();
        let g1 = n.find("g1").unwrap();
        let g2 = n.find("g2").unwrap();
        assert_eq!(n.fanouts(a), &[g1]);
        assert_eq!(n.fanouts(g1), &[g2]);
        assert!(n.fanouts(g2).is_empty());
    }

    #[test]
    fn evaluation_matches_spec() {
        let n = tiny();
        for i in 0..8u8 {
            let a = [(i & 1) != 0, (i & 2) != 0, (i & 4) != 0];
            let expect = !(a[0] && a[1]) || a[2];
            assert_eq!(n.evaluate_outputs(&a), vec![expect], "{a:?}");
        }
    }

    #[test]
    fn input_positions() {
        let n = tiny();
        let b = n.find("b").unwrap();
        let g1 = n.find("g1").unwrap();
        assert_eq!(n.input_position(b), Some(1));
        assert_eq!(n.input_position(g1), None);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut b = Netlist::builder();
        let a = b.input("a");
        let err = b.gate(GateKind::Buf, "a", vec![a], d(1, 1)).unwrap_err();
        assert_eq!(err, NetlistError::DuplicateName("a".into()));
    }

    #[test]
    fn duplicate_output_names_rejected_by_try_output() {
        let mut b = Netlist::builder();
        let a = b.input("a");
        let g = b.gate(GateKind::Not, "g", vec![a], d(1, 1)).unwrap();
        b.try_output("y", a).unwrap();
        let err = b.try_output("y", g).unwrap_err();
        assert_eq!(err, NetlistError::DuplicateName("y".into()));
        // The failed declaration must not have been recorded.
        b.try_output("z", g).unwrap();
        let n = b.finish().unwrap();
        assert_eq!(n.outputs().len(), 2);
    }

    #[test]
    fn bad_arity_rejected() {
        let mut b = Netlist::builder();
        let a = b.input("a");
        let err = b.gate(GateKind::Not, "n", vec![a, a], d(1, 1)).unwrap_err();
        assert!(matches!(err, NetlistError::BadArity { arity: 2, .. }));
        let err2 = b.gate(GateKind::Input, "i", vec![], d(1, 1)).unwrap_err();
        assert!(matches!(err2, NetlistError::BadArity { .. }));
    }

    #[test]
    fn no_outputs_rejected() {
        let mut b = Netlist::builder();
        b.input("a");
        assert_eq!(b.finish().unwrap_err(), NetlistError::NoOutputs);
    }

    #[test]
    fn map_delays_skips_inputs() {
        let n = tiny().map_delays(|b| DelayBounds::new(b.max, b.max));
        let a = n.find("a").unwrap();
        let g1 = n.find("g1").unwrap();
        assert_eq!(n.node(a).delay(), DelayBounds::ZERO);
        assert_eq!(n.node(g1).delay(), d(2, 2));
    }

    #[test]
    fn multi_output_netlists() {
        let mut b = Netlist::builder();
        let a = b.input("a");
        let g = b.gate(GateKind::Not, "g", vec![a], d(1, 1)).unwrap();
        b.output("o1", g);
        b.output("o2", a);
        let n = b.finish().unwrap();
        assert_eq!(n.outputs().len(), 2);
        assert_eq!(n.evaluate_outputs(&[true]), vec![false, true]);
    }

    #[test]
    fn structural_signature_ignores_gate_names() {
        let build = |gate_name: &str| {
            let mut b = Netlist::builder();
            let a = b.input("a");
            let bb = b.input("b");
            let g = b
                .gate(GateKind::And, gate_name, vec![a, bb], d(1, 2))
                .unwrap();
            b.output("f", g);
            b.finish().unwrap()
        };
        assert_eq!(
            build("g1").structural_signature(),
            build("renamed").structural_signature()
        );
    }

    #[test]
    fn structural_signature_distinguishes_structure() {
        let base = tiny();
        // Kind change.
        let mut b = Netlist::builder();
        let a = b.input("a");
        let bb = b.input("b");
        let c = b.input("c");
        let g1 = b.gate(GateKind::And, "g1", vec![a, bb], d(1, 2)).unwrap();
        let g2 = b.gate(GateKind::Or, "g2", vec![g1, c], d(1, 1)).unwrap();
        b.output("f", g2);
        let kind_changed = b.finish().unwrap();
        assert_ne!(
            base.structural_signature(),
            kind_changed.structural_signature()
        );
        // Delay change.
        let delay_changed = base.map_delays(|db| DelayBounds::new(db.min, db.max + d(1, 1).max));
        assert_ne!(
            base.structural_signature(),
            delay_changed.structural_signature()
        );
        // Output-name change.
        let mut b = Netlist::builder();
        let a = b.input("a");
        let bb = b.input("b");
        let c = b.input("c");
        let g1 = b.gate(GateKind::Nand, "g1", vec![a, bb], d(1, 2)).unwrap();
        let g2 = b.gate(GateKind::Or, "g2", vec![g1, c], d(1, 1)).unwrap();
        b.output("other", g2);
        let renamed_output = b.finish().unwrap();
        assert_ne!(
            base.structural_signature(),
            renamed_output.structural_signature()
        );
    }

    #[test]
    fn structural_signature_is_pin_order_sensitive() {
        // Mux pin order (s, d0, d1) is semantic: swapping d0/d1 is a
        // different circuit and must not share a signature.
        let build = |swap: bool| {
            let mut b = Netlist::builder();
            let s = b.input("s");
            let d0 = b.input("d0");
            let d1 = b.input("d1");
            let pins = if swap {
                vec![s, d1, d0]
            } else {
                vec![s, d0, d1]
            };
            let m = b.gate(GateKind::Mux, "m", pins, d(1, 1)).unwrap();
            b.output("y", m);
            b.finish().unwrap()
        };
        assert_ne!(
            build(false).structural_signature(),
            build(true).structural_signature()
        );
    }

    #[test]
    fn error_display() {
        assert!(NetlistError::NoOutputs.to_string().contains("no primary"));
        assert!(NetlistError::UnknownNode("x".into())
            .to_string()
            .contains("`x`"));
        let e = NetlistError::Parse {
            line: 3,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }
}
