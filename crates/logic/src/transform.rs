//! Structural netlist transformations: sweeping, cone extraction,
//! decomposition and structural hashing.
//!
//! These preserve the static functions of the (kept) outputs and the
//! *delay bounds along every surviving path*, so exact-delay results
//! before and after are comparable. Decomposition changes path/gate
//! granularity deliberately (see [`decompose_to_binary`]) — the paper's
//! analysis operates on whatever gate-level the mapper produced, and
//! these utilities let one study how granularity affects the exact
//! delays.

use std::collections::HashMap;

use crate::delay::DelayBounds;
use crate::gate::GateKind;
use crate::netlist::{Netlist, NetlistBuilder, NetlistError, NodeId};

/// Removes every node that reaches no primary output ("dangling" logic,
/// e.g. the provably-zero top carries of an array multiplier).
///
/// Output order and names are preserved; surviving nodes keep their
/// names and delays.
///
/// # Example
///
/// ```
/// use tbf_logic::generators::datapath::array_multiplier;
/// use tbf_logic::transform::sweep;
/// use tbf_logic::{DelayBounds, Time};
///
/// let m = array_multiplier(4, DelayBounds::fixed(Time::from_int(1)));
/// let swept = sweep(&m);
/// assert!(swept.gate_count() <= m.gate_count());
/// assert_eq!(swept.outputs().len(), m.outputs().len());
/// ```
pub fn sweep(netlist: &Netlist) -> Netlist {
    // Mark the cone of every output.
    let mut keep = vec![false; netlist.len()];
    let mut stack: Vec<NodeId> = netlist.outputs().iter().map(|&(_, o)| o).collect();
    while let Some(n) = stack.pop() {
        if keep[n.index()] {
            continue;
        }
        keep[n.index()] = true;
        stack.extend(netlist.node(n).fanins().iter().copied());
    }
    // Inputs are interface: always kept (an unused input stays an input).
    for &i in netlist.inputs() {
        keep[i.index()] = true;
    }
    rebuild(netlist, &keep).expect("sweeping cannot create errors")
}

/// Extracts the fanin cone of one output as a standalone netlist (that
/// output only; unused inputs dropped).
///
/// # Panics
///
/// Panics if `output` does not name a primary output of `netlist`.
pub fn extract_cone(netlist: &Netlist, output: &str) -> Netlist {
    let &(_, root) = netlist
        .outputs()
        .iter()
        .find(|(name, _)| name == output)
        .unwrap_or_else(|| panic!("no output named `{output}`"));
    let mut keep = vec![false; netlist.len()];
    let mut stack = vec![root];
    while let Some(n) = stack.pop() {
        if keep[n.index()] {
            continue;
        }
        keep[n.index()] = true;
        stack.extend(netlist.node(n).fanins().iter().copied());
    }
    let mut b = Netlist::builder();
    let mut map: HashMap<NodeId, NodeId> = HashMap::new();
    for (id, node) in netlist.nodes() {
        if !keep[id.index()] {
            continue;
        }
        let new_id = if node.kind().is_input() {
            b.input(node.name())
        } else {
            let fanins = node.fanins().iter().map(|f| map[f]).collect();
            b.gate(node.kind(), node.name(), fanins, node.delay())
                .expect("names unique in the source netlist")
        };
        map.insert(id, new_id);
    }
    b.output(output, map[&root]);
    b.finish().expect("one output was declared")
}

/// A single-output cone extracted by [`extract_cone_slice`], with the
/// index map needed to translate cone-local results (witness vectors,
/// per-node delay assignments) back into the source netlist's
/// coordinates.
#[derive(Clone, Debug)]
pub struct ConeSlice {
    /// The standalone cone netlist (one output; unused inputs dropped).
    pub netlist: Netlist,
    /// `node_map[i]` is the source-netlist [`NodeId`] of cone node `i`.
    /// Nodes are emitted in ascending source order, so the map is
    /// strictly increasing and the cone stays topological.
    pub node_map: Vec<NodeId>,
}

/// Extracts the fanin cone of the `output_index`-th primary output as a
/// standalone netlist plus the node map back to `netlist` — the per-cone
/// work unit of the parallel analysis driver. Unlike [`extract_cone`]
/// this addresses outputs by position, so duplicate output names and
/// several outputs sharing one driver node stay unambiguous.
///
/// # Panics
///
/// Panics if `output_index` is out of range.
pub fn extract_cone_slice(netlist: &Netlist, output_index: usize) -> ConeSlice {
    let (name, root) = &netlist.outputs()[output_index];
    let mut keep = vec![false; netlist.len()];
    let mut stack = vec![*root];
    while let Some(n) = stack.pop() {
        if keep[n.index()] {
            continue;
        }
        keep[n.index()] = true;
        stack.extend(netlist.node(n).fanins().iter().copied());
    }
    let mut b = Netlist::builder();
    let mut node_map = Vec::new();
    let mut map: HashMap<NodeId, NodeId> = HashMap::new();
    for (id, node) in netlist.nodes() {
        if !keep[id.index()] {
            continue;
        }
        let new_id = if node.kind().is_input() {
            b.input(node.name())
        } else {
            let fanins = node.fanins().iter().map(|f| map[f]).collect();
            b.gate(node.kind(), node.name(), fanins, node.delay())
                .expect("names unique in the source netlist")
        };
        debug_assert_eq!(new_id.index(), node_map.len());
        node_map.push(id);
        map.insert(id, new_id);
    }
    b.output(name, map[root]);
    ConeSlice {
        netlist: b.finish().expect("one output was declared"),
        node_map,
    }
}

/// Rebuilds keeping only flagged nodes.
fn rebuild(netlist: &Netlist, keep: &[bool]) -> Result<Netlist, NetlistError> {
    let mut b = Netlist::builder();
    let mut map: HashMap<NodeId, NodeId> = HashMap::new();
    for (id, node) in netlist.nodes() {
        if !keep[id.index()] {
            continue;
        }
        let new_id = if node.kind().is_input() {
            b.try_input(node.name())?
        } else {
            let fanins = node.fanins().iter().map(|f| map[f]).collect();
            b.gate(node.kind(), node.name(), fanins, node.delay())?
        };
        map.insert(id, new_id);
    }
    for (name, id) in netlist.outputs() {
        b.output(name, map[id]);
    }
    b.finish()
}

/// Decomposes every gate with more than two fanins into a balanced tree
/// of two-input gates of the same family (`AND`/`OR`/`XOR` trees with a
/// final inversion for the negated kinds). `MAJ` and `MUX` expand to
/// their AND/OR forms.
///
/// Delay bounds: the original gate's bounds go on the tree's **root**
/// gate and the added interior gates get zero delay, so every original
/// path keeps its exact delay interval (and the exact circuit delays are
/// unchanged — tested in `transform::tests`).
pub fn decompose_to_binary(netlist: &Netlist) -> Netlist {
    let mut b = Netlist::builder();
    let mut map: HashMap<NodeId, NodeId> = HashMap::new();
    let mut fresh = 0usize;
    for (id, node) in netlist.nodes() {
        let new_id = match node.kind() {
            GateKind::Input => b.input(node.name()),
            kind => {
                let fanins: Vec<NodeId> = node.fanins().iter().map(|f| map[f]).collect();
                lower_gate(&mut b, kind, node.name(), &fanins, node.delay(), &mut fresh)
            }
        };
        map.insert(id, new_id);
    }
    for (name, id) in netlist.outputs() {
        b.output(name, map[id]);
    }
    b.finish().expect("outputs preserved")
}

/// Emits `kind(fanins)` as two-input logic; the node named `name` is the
/// tree root carrying `delay`.
fn lower_gate(
    b: &mut NetlistBuilder,
    kind: GateKind,
    name: &str,
    fanins: &[NodeId],
    delay: DelayBounds,
    fresh: &mut usize,
) -> NodeId {
    let mut aux = |b: &mut NetlistBuilder, kind: GateKind, fi: Vec<NodeId>| -> NodeId {
        *fresh += 1;
        b.gate(kind, &format!("{name}__t{fresh}"), fi, DelayBounds::ZERO)
            .expect("fresh names are unique")
    };
    // Balanced zero-delay reduction of `fanins` under `base`, leaving the
    // LAST combine for the named, delay-carrying root (possibly inverted).
    let reduce =
        |b: &mut NetlistBuilder,
         base: GateKind,
         fanins: &[NodeId],
         fresh_aux: &mut dyn FnMut(&mut NetlistBuilder, GateKind, Vec<NodeId>) -> NodeId|
         -> Vec<NodeId> {
            let mut layer: Vec<NodeId> = fanins.to_vec();
            while layer.len() > 2 {
                let mut next = Vec::with_capacity(layer.len().div_ceil(2));
                for pair in layer.chunks(2) {
                    match pair {
                        [only] => next.push(*only),
                        [l, r] => next.push(fresh_aux(b, base, vec![*l, *r])),
                        _ => unreachable!("chunks(2)"),
                    }
                }
                layer = next;
            }
            layer
        };
    match kind {
        GateKind::Input => unreachable!("handled by caller"),
        GateKind::Const0 | GateKind::Const1 | GateKind::Not | GateKind::Buf => b
            .gate(kind, name, fanins.to_vec(), delay)
            .expect("source names are unique"),
        GateKind::And | GateKind::Or | GateKind::Xor => {
            let layer = reduce(b, kind, fanins, &mut aux);
            b.gate(kind, name, layer, delay)
                .expect("source names are unique")
        }
        GateKind::Nand | GateKind::Nor | GateKind::Xnor => {
            let base = match kind {
                GateKind::Nand => GateKind::And,
                GateKind::Nor => GateKind::Or,
                _ => GateKind::Xor,
            };
            let layer = reduce(b, base, fanins, &mut aux);
            let inner = if layer.len() == 1 {
                layer[0]
            } else {
                aux(b, base, layer)
            };
            b.gate(GateKind::Not, name, vec![inner], delay)
                .expect("source names are unique")
        }
        GateKind::Maj => {
            // ab + ac + bc with zero-delay structure, named OR root.
            let ab = aux(b, GateKind::And, vec![fanins[0], fanins[1]]);
            let ac = aux(b, GateKind::And, vec![fanins[0], fanins[2]]);
            let bc = aux(b, GateKind::And, vec![fanins[1], fanins[2]]);
            let left = aux(b, GateKind::Or, vec![ab, ac]);
            b.gate(GateKind::Or, name, vec![left, bc], delay)
                .expect("source names are unique")
        }
        GateKind::Mux => {
            // s̄·d0 + s·d1.
            let ns = aux(b, GateKind::Not, vec![fanins[0]]);
            let d0 = aux(b, GateKind::And, vec![ns, fanins[1]]);
            let d1 = aux(b, GateKind::And, vec![fanins[0], fanins[2]]);
            b.gate(GateKind::Or, name, vec![d0, d1], delay)
                .expect("source names are unique")
        }
    }
}

/// Structural hashing: merges gates with identical `(kind, fanins,
/// delay)` signatures (fanins sorted for the commutative kinds). The
/// first occurrence's name survives; outputs are re-pointed.
///
/// Static functions are preserved exactly. Exact *delays* are preserved
/// too: duplicate gates with identical bounds denote interchangeable
/// delay variables (any behaviour of the merged circuit is a behaviour
/// of the original with the duplicates tracking each other, and the
/// worst case is invariant under that restriction — the merged circuit's
/// path set maps onto a subset with identical k-functions).
pub fn strash(netlist: &Netlist) -> Netlist {
    #[derive(PartialEq, Eq, Hash)]
    struct Sig {
        kind_tag: u8,
        fanins: Vec<NodeId>,
        delay: DelayBounds,
    }
    let commutative = |k: GateKind| {
        matches!(
            k,
            GateKind::And
                | GateKind::Or
                | GateKind::Nand
                | GateKind::Nor
                | GateKind::Xor
                | GateKind::Xnor
                | GateKind::Maj
        )
    };
    let tag = |k: GateKind| -> u8 {
        match k {
            GateKind::Input => 0,
            GateKind::And => 1,
            GateKind::Or => 2,
            GateKind::Nand => 3,
            GateKind::Nor => 4,
            GateKind::Xor => 5,
            GateKind::Xnor => 6,
            GateKind::Not => 7,
            GateKind::Buf => 8,
            GateKind::Maj => 9,
            GateKind::Mux => 10,
            GateKind::Const0 => 11,
            GateKind::Const1 => 12,
        }
    };
    let mut b = Netlist::builder();
    let mut map: HashMap<NodeId, NodeId> = HashMap::new();
    let mut seen: HashMap<Sig, NodeId> = HashMap::new();
    for (id, node) in netlist.nodes() {
        let new_id = if node.kind().is_input() {
            b.input(node.name())
        } else {
            let mut fanins: Vec<NodeId> = node.fanins().iter().map(|f| map[f]).collect();
            let mut key_fanins = fanins.clone();
            if commutative(node.kind()) {
                key_fanins.sort_unstable();
                fanins = key_fanins.clone();
            }
            let sig = Sig {
                kind_tag: tag(node.kind()),
                fanins: key_fanins,
                delay: node.delay(),
            };
            match seen.get(&sig) {
                Some(&existing) => existing,
                None => {
                    let created = b
                        .gate(node.kind(), node.name(), fanins, node.delay())
                        .expect("source names are unique");
                    seen.insert(sig, created);
                    created
                }
            }
        };
        map.insert(id, new_id);
    }
    for (name, id) in netlist.outputs() {
        b.output(name, map[id]);
    }
    b.finish().expect("outputs preserved")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::Time;
    use crate::generators::adders::paper_bypass_adder;
    use crate::generators::datapath::array_multiplier;
    use crate::generators::trees::parity_tree;

    fn d(lo: i64, hi: i64) -> DelayBounds {
        DelayBounds::new(Time::from_int(lo), Time::from_int(hi))
    }

    fn same_function(a: &Netlist, b: &Netlist, n_in: usize) {
        assert!(n_in <= 12, "exhaustive check only");
        for bits in 0..(1u64 << n_in) {
            let v: Vec<bool> = (0..n_in).map(|i| (bits >> i) & 1 == 1).collect();
            assert_eq!(a.evaluate_outputs(&v), b.evaluate_outputs(&v), "{bits:#b}");
        }
    }

    #[test]
    fn sweep_drops_dangling_logic() {
        let m = array_multiplier(3, DelayBounds::fixed(Time::from_int(1)));
        let swept = sweep(&m);
        assert!(
            swept.gate_count() < m.gate_count(),
            "multiplier has dead carries"
        );
        same_function(&m, &swept, 6);
        assert_eq!(swept.topological_delay(), m.topological_delay());
    }

    #[test]
    fn extract_cone_isolates_one_output() {
        let n = paper_bypass_adder();
        let cone = extract_cone(&n, "cout");
        assert_eq!(cone.outputs().len(), 1);
        assert_eq!(cone.topological_delay(), Time::from_int(40));
        // Function agrees on shared inputs (same order by construction).
        for bits in 0..512u64 {
            let v: Vec<bool> = (0..9).map(|i| (bits >> i) & 1 == 1).collect();
            assert_eq!(cone.evaluate_outputs(&v), n.evaluate_outputs(&v));
        }
    }

    #[test]
    #[should_panic(expected = "no output named")]
    fn extract_cone_unknown_output_panics() {
        let _ = extract_cone(&paper_bypass_adder(), "nope");
    }

    #[test]
    fn extract_cone_slice_maps_back_to_the_source() {
        let n = paper_bypass_adder();
        for (idx, (name, root)) in n.outputs().iter().enumerate() {
            let slice = extract_cone_slice(&n, idx);
            assert_eq!(slice.netlist.outputs().len(), 1);
            assert_eq!(&slice.netlist.outputs()[0].0, name);
            assert_eq!(slice.node_map.len(), slice.netlist.len());
            // The map is strictly increasing (cone order = source order)
            // and every cone node mirrors its source node.
            for (cone_id, node) in slice.netlist.nodes() {
                let src = slice.node_map[cone_id.index()];
                assert_eq!(n.node(src).name(), node.name());
                assert_eq!(n.node(src).kind(), node.kind());
                assert_eq!(n.node(src).delay(), node.delay());
            }
            assert!(slice.node_map.windows(2).all(|w| w[0] < w[1]));
            // The cone's output node maps to the source output driver.
            assert_eq!(slice.node_map[slice.netlist.outputs()[0].1.index()], *root);
            // Per-output topological delay is preserved.
            assert_eq!(
                slice.netlist.topological_delay(),
                n.topological_delay_of(*root)
            );
        }
    }

    #[test]
    fn extract_cone_slice_disambiguates_shared_drivers() {
        // Two outputs on the SAME driver node: by-index extraction must
        // keep them distinct even though the cones are identical.
        let mut b = Netlist::builder();
        let x = b.input("x");
        let g = b.gate(GateKind::Not, "g", vec![x], d(1, 2)).unwrap();
        b.output("o1", g);
        b.output("o2", g);
        let n = b.finish().unwrap();
        let s0 = extract_cone_slice(&n, 0);
        let s1 = extract_cone_slice(&n, 1);
        assert_eq!(s0.netlist.outputs()[0].0, "o1");
        assert_eq!(s1.netlist.outputs()[0].0, "o2");
        assert_eq!(s0.node_map, s1.node_map);
    }

    #[test]
    fn decompose_preserves_function_and_lengths() {
        let n = paper_bypass_adder();
        let bin = decompose_to_binary(&n);
        for (_, node) in bin.nodes() {
            assert!(node.fanins().len() <= 2, "{} still wide", node.name());
        }
        for bits in 0..512u64 {
            let v: Vec<bool> = (0..9).map(|i| (bits >> i) & 1 == 1).collect();
            assert_eq!(bin.evaluate_outputs(&v), n.evaluate_outputs(&v));
        }
        // Zero-delay interior gates keep the topological delay intact.
        assert_eq!(bin.topological_delay(), n.topological_delay());
    }

    #[test]
    fn decompose_preserves_exact_path_intervals() {
        // The 4-wide propagate AND becomes a tree; the root carries the
        // original [2,4] bounds and interior gates are free.
        let n = paper_bypass_adder();
        let bin = decompose_to_binary(&n);
        let arr_max = bin.arrivals(false, true);
        let arr_min = bin.arrivals(true, false);
        let bp = bin.find("bp").expect("root keeps the name");
        assert_eq!(
            arr_max[bp.index()],
            Time::from_int(8),
            "xor (4) + AND-root (4)"
        );
        assert_eq!(arr_min[bp.index()], Time::from_int(4));
    }

    #[test]
    fn strash_merges_duplicates() {
        let mut b = Netlist::builder();
        let x = b.input("x");
        let y = b.input("y");
        let g1 = b.gate(GateKind::And, "g1", vec![x, y], d(1, 2)).unwrap();
        let g2 = b.gate(GateKind::And, "g2", vec![y, x], d(1, 2)).unwrap(); // commutative dup
        let g3 = b.gate(GateKind::And, "g3", vec![x, y], d(1, 3)).unwrap(); // different delay
        let o1 = b.gate(GateKind::Or, "o1", vec![g1, g2], d(1, 1)).unwrap();
        b.output("f", o1);
        b.output("g", g3);
        let n = b.finish().unwrap();
        let hashed = strash(&n);
        // g2 merged into g1; g3 kept (delay differs).
        assert_eq!(hashed.gate_count(), n.gate_count() - 1);
        same_function(&n, &hashed, 2);
    }

    #[test]
    fn strash_is_idempotent() {
        let n = parity_tree(8, d(1, 2));
        let once = strash(&n);
        let twice = strash(&once);
        assert_eq!(once.gate_count(), twice.gate_count());
    }

    #[test]
    fn pipeline_compose() {
        // sweep ∘ strash ∘ decompose on the multiplier keeps the function.
        let m = array_multiplier(3, DelayBounds::fixed(Time::from_int(1)));
        let cooked = sweep(&strash(&decompose_to_binary(&m)));
        same_function(&m, &cooked, 6);
        assert!(cooked.gate_count() <= decompose_to_binary(&m).gate_count());
    }
}
