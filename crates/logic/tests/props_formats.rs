//! Round-trip and robustness properties of the multi-format front end.
//!
//! The contract under test (see `FORMATS.md`): for every netlist the
//! writers can serialize, `parse ∘ write` reproduces the **identical**
//! circuit — byte-identical `structural_signature` and per-output
//! `cone_signature`s, for both `.bench` and BLIF, regardless of the
//! delay callback handed to the re-parse (the emitted `# @tbf delay`
//! pragmas must dominate it). Plus: malformed AIGER/Verilog input
//! yields typed errors, never panics, even one bit-flip away from a
//! valid file.
//!
//! Cases come from the in-repo SplitMix64 stream — hermetic and
//! bit-stable, no external property-test crates.

use tbf_logic::generators::random::{random_dag, SplitMix64};
use tbf_logic::parsers::aiger::parse_aiger;
use tbf_logic::parsers::bench::{parse_bench, write_bench};
use tbf_logic::parsers::blif::{parse_blif, write_blif};
use tbf_logic::parsers::verilog::parse_verilog;
use tbf_logic::parsers::{mcnc_like_delays, unit_delays};
use tbf_logic::{DelayBounds, Netlist, NetlistError};

/// Every signature the round-trip contract covers: the structural one
/// plus one cone per output.
fn signatures(n: &Netlist) -> Vec<Vec<u8>> {
    let mut sigs = vec![n.structural_signature()];
    sigs.extend((0..n.outputs().len()).map(|i| n.cone_signature(i)));
    sigs
}

/// One seeded test netlist. Sizes and delay spreads vary with the
/// seed; odd seeds stretch every dmin away from dmax so the emitted
/// pragmas are not uniform.
fn seeded_netlist(seed: u64) -> Netlist {
    let inputs = 3 + (seed as usize % 6);
    let gates = 8 + (seed as usize * 7 % 40);
    let n = random_dag(inputs, gates, 3, seed);
    if seed % 2 == 1 {
        let f = 0.5 + (seed % 5) as f64 / 10.0;
        n.map_delays(|d| DelayBounds::scaled_min(d.max, f))
    } else {
        n
    }
}

#[test]
fn hundred_seeded_netlists_round_trip_with_identical_signatures() {
    for seed in 0..100u64 {
        let original = seeded_netlist(seed);
        let want = signatures(&original);

        // The re-parse deliberately uses a different delay callback
        // than the original netlist: the pragmas must win.
        let bench = write_bench(&original)
            .unwrap_or_else(|e| panic!("write_bench failed (seed {seed}): {e}"));
        let via_bench = parse_bench(&bench, mcnc_like_delays)
            .unwrap_or_else(|e| panic!("bench re-parse failed (seed {seed}): {e}\n{bench}"));
        assert_eq!(
            signatures(&via_bench),
            want,
            "bench round-trip changed a signature (seed {seed})\n{bench}"
        );

        let blif = write_blif(&original, "prop")
            .unwrap_or_else(|e| panic!("write_blif failed (seed {seed}): {e}"));
        let via_blif = parse_blif(&blif, mcnc_like_delays)
            .unwrap_or_else(|e| panic!("blif re-parse failed (seed {seed}): {e}\n{blif}"));
        assert_eq!(
            signatures(&via_blif),
            want,
            "blif round-trip changed a signature (seed {seed})\n{blif}"
        );

        // Cross-format parity follows, but assert it explicitly: the
        // two serializations describe the identical circuit.
        assert_eq!(
            signatures(&via_bench),
            signatures(&via_blif),
            "bench and blif round-trips disagree (seed {seed})"
        );
    }
}

#[test]
fn committed_corpus_round_trips() {
    // Every committed corpus circuit must satisfy the same contract,
    // in whichever format it is committed.
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../../benchmarks");
    let mut checked = 0;
    for tier in ["iscas85", "generated"] {
        let dir = format!("{root}/{tier}");
        let mut paths: Vec<_> = std::fs::read_dir(&dir)
            .unwrap_or_else(|e| panic!("{dir}: {e} — corpus missing?"))
            .map(|entry| entry.expect("readable dir entry").path())
            .collect();
        paths.sort();
        for path in paths {
            let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("");
            if ext != "bench" && ext != "blif" {
                continue;
            }
            let text = std::fs::read_to_string(&path).expect("corpus files are UTF-8");
            let label = path.display();
            let original = match ext {
                "bench" => parse_bench(&text, mcnc_like_delays),
                _ => parse_blif(&text, mcnc_like_delays),
            }
            .unwrap_or_else(|e| panic!("{label}: {e}"));
            let want = signatures(&original);
            for (format, rt) in [
                ("bench", write_bench(&original)),
                ("blif", write_blif(&original, "corpus")),
            ] {
                let written = match rt {
                    Ok(w) => w,
                    // `.bench` cannot express constants; skipping is the
                    // documented behavior, not a round-trip failure.
                    Err(NetlistError::BadArity { .. }) if format == "bench" => continue,
                    Err(e) => panic!("{label}: write_{format} failed: {e}"),
                };
                let round = match format {
                    "bench" => parse_bench(&written, unit_delays),
                    _ => parse_blif(&written, unit_delays),
                }
                .unwrap_or_else(|e| panic!("{label}: {format} re-parse failed: {e}"));
                assert_eq!(
                    signatures(&round),
                    want,
                    "{label}: {format} round-trip changed a signature"
                );
            }
            checked += 1;
        }
    }
    assert!(checked >= 14, "only {checked} corpus circuits found");
}

/// A small valid ASCII AIGER file used as the mutation base.
const AAG_BASE: &[u8] =
    b"aag 5 2 0 2 3\n2\n4\n6\n11\n6 2 4\n8 6 5\n10 8 2\ni0 a\ni1 b\no0 f\no1 g\n";

#[test]
fn aiger_mutations_yield_typed_errors_never_panics() {
    assert!(
        parse_aiger(AAG_BASE, unit_delays).is_ok(),
        "mutation base must be valid"
    );
    for seed in 0..400u64 {
        let mut rng = SplitMix64::new(seed ^ 0xB17F);
        let mut bytes = AAG_BASE.to_vec();
        for _ in 0..1 + rng.below(3) {
            let pos = rng.below(bytes.len());
            match rng.below(3) {
                0 => bytes[pos] ^= 1 << rng.below(8),
                1 => {
                    bytes.remove(pos);
                }
                _ => bytes.insert(pos, (rng.next_u64() & 0xFF) as u8),
            }
            if bytes.is_empty() {
                break;
            }
        }
        match parse_aiger(&bytes, unit_delays) {
            // Some mutations stay valid; accepted netlists must be
            // coherent.
            Ok(n) => {
                let inputs = vec![false; n.inputs().len()];
                assert_eq!(n.evaluate_outputs(&inputs).len(), n.outputs().len());
            }
            Err(e) => {
                // Typed: rendering the error must work and carry text.
                assert!(!e.to_string().is_empty(), "seed {seed}");
            }
        }
    }
}

/// A small valid Verilog module used as the mutation base.
const VERILOG_BASE: &str = "module m (a, b, f);\n  input a, b;\n  output f;\n  wire w;\n  and #(1.5) g1 (w, a, b);\n  not g2 (f, w);\nendmodule\n";

#[test]
fn verilog_mutations_yield_typed_errors_never_panics() {
    assert!(
        parse_verilog(VERILOG_BASE, unit_delays).is_ok(),
        "mutation base must be valid"
    );
    const NOISE: &[char] = &[
        '(', ')', ';', ',', '#', '.', '/', '*', '\\', 'x', '0', '9', ' ', '\n', '[', ']', 'ü',
    ];
    for seed in 0..400u64 {
        let mut rng = SplitMix64::new(seed ^ 0x7E21106);
        let mut chars: Vec<char> = VERILOG_BASE.chars().collect();
        for _ in 0..1 + rng.below(3) {
            let pos = rng.below(chars.len());
            match rng.below(3) {
                0 => chars[pos] = NOISE[rng.below(NOISE.len())],
                1 => {
                    chars.remove(pos);
                }
                _ => chars.insert(pos, NOISE[rng.below(NOISE.len())]),
            }
            if chars.is_empty() {
                break;
            }
        }
        let text: String = chars.into_iter().collect();
        match parse_verilog(&text, unit_delays) {
            Ok(n) => {
                let inputs = vec![false; n.inputs().len()];
                assert_eq!(n.evaluate_outputs(&inputs).len(), n.outputs().len());
            }
            Err(e) => {
                assert!(!e.to_string().is_empty(), "seed {seed}");
            }
        }
    }
}

#[test]
fn aiger_malformed_table_is_typed() {
    // Beyond random mutation: the documented malformed classes, each a
    // typed `Parse` error naming a line.
    let cases: [&[u8]; 8] = [
        b"aag 1 1 0 1 0\n2\n9\n",               // output literal out of range
        b"aag 1 2 0 0 0\n2\n2\n",               // duplicate input literal
        b"aag 2 1 0 1 1\n2\n4\n4 2 2\n4 2 2\n", // AND defined twice
        b"aag 99999999999999999999 0 0 0 0\n",  // header overflow
        b"aag 2 1 0 1 1\n2\n4\n",               // truncated AND section
        b"aig 1 2 0 0 0\n",                     // binary I+A > M
        b"aag 1 1 0 1 0\n3\n3\n",               // odd input literal
        b"aag 1 1 0 1 0\n2\n2\ni9 z\n",         // symbol position out of range
    ];
    for bytes in cases {
        match parse_aiger(bytes, unit_delays) {
            Err(NetlistError::Parse { line, message }) => {
                assert!(line > 0, "{message}");
                assert!(!message.is_empty());
            }
            Err(other) => panic!("expected Parse error, got {other}"),
            Ok(_) => panic!("accepted malformed AIGER: {bytes:?}"),
        }
    }
}

#[test]
fn verilog_malformed_table_is_typed() {
    let cases = [
        "module m (a, f); input a; output f; not (f, a);", // no endmodule
        "module m (a, f); input a; output f; assign f = a; endmodule",
        "module m (a, f); input a; output f; not #(-1) (f, a); endmodule",
        "module m (a, f); input a; output f; not #(2, 1) (f, a); endmodule",
        "module m (a, f); input a[3:0]; output f; not (f, a); endmodule",
        "module m (a, f); input a; output f; frob (f, a); endmodule",
        "module m (a, f); input a; output f; not (f, a); /* unterminated endmodule",
    ];
    for src in cases {
        match parse_verilog(src, unit_delays) {
            Err(NetlistError::Parse { line, message }) => {
                assert!(line > 0, "{message}");
                assert!(!message.is_empty());
            }
            Err(other) => panic!("expected Parse error, got {other}: {src}"),
            Ok(_) => panic!("accepted malformed Verilog: {src}"),
        }
    }
}
