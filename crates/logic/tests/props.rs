//! Property tests for the netlist substrate: timing decompositions,
//! path queries vs brute force, and parser round-trips on random
//! circuits.
//!
//! Cases are generated from the in-repo SplitMix64 stream — hermetic and
//! bit-stable, no external property-test crates.

use tbf_logic::generators::random::SplitMix64;
use tbf_logic::parsers::bench::{parse_bench, write_bench};
use tbf_logic::parsers::unit_delays;
use tbf_logic::paths::{all_paths, next_breakpoint, straddling_paths};
use tbf_logic::transform::{decompose_to_binary, strash, sweep};
use tbf_logic::{DelayBounds, GateKind, Netlist, Time};

#[derive(Clone, Debug)]
struct Recipe {
    n_inputs: usize,
    gates: Vec<(u8, Vec<usize>, i64, i64)>,
}

fn gen_recipe(rng: &mut SplitMix64) -> Recipe {
    let n_inputs = 2 + rng.below(3);
    let n_gates = 1 + rng.below(11);
    let gates = (0..n_gates)
        .map(|_| {
            let kind = rng.below(8) as u8;
            let n_fanins = 1 + rng.below(3);
            let fanins = (0..n_fanins).map(|_| rng.below(64)).collect();
            let lo = 1 + rng.below(5) as i64;
            let spread = rng.below(4) as i64;
            (kind, fanins, lo, lo + spread)
        })
        .collect();
    Recipe { n_inputs, gates }
}

fn build(recipe: &Recipe) -> Netlist {
    let mut b = Netlist::builder();
    let mut pool: Vec<_> = (0..recipe.n_inputs)
        .map(|i| b.input(&format!("x{i}")))
        .collect();
    for (g, (kind_raw, fanin_refs, lo, hi)) in recipe.gates.iter().enumerate() {
        let kind = match kind_raw % 8 {
            0 => GateKind::And,
            1 => GateKind::Or,
            2 => GateKind::Nand,
            3 => GateKind::Nor,
            4 => GateKind::Xor,
            5 => GateKind::Xnor,
            6 => GateKind::Buf,
            _ => GateKind::Not,
        };
        let mut fanins: Vec<_> = fanin_refs.iter().map(|&r| pool[r % pool.len()]).collect();
        if matches!(kind, GateKind::Not | GateKind::Buf) {
            fanins.truncate(1);
        }
        let delay = DelayBounds::new(Time::from_int(*lo), Time::from_int(*hi));
        pool.push(
            b.gate(kind, &format!("g{g}"), fanins, delay)
                .expect("unique names"),
        );
    }
    b.output("f", *pool.last().expect("non-empty"));
    b.finish().expect("one output")
}

fn cases(salt: u64) -> impl Iterator<Item = Recipe> {
    (0..96u64).map(move |i| {
        let mut rng = SplitMix64::new(i.wrapping_mul(0x2545F491).wrapping_add(salt));
        gen_recipe(&mut rng)
    })
}

/// The topological delay equals the maximum explicit path length, and
/// arrivals decompose as prefix + suffix along every path.
#[test]
fn topological_delay_is_max_path_length() {
    for recipe in cases(0x70B0) {
        let n = build(&recipe);
        let out = n.outputs()[0].1;
        let paths = all_paths(&n, out, 100_000).expect("small circuits");
        let by_paths = paths
            .iter()
            .map(|p| p.length_max(&n))
            .max()
            .unwrap_or(Time::ZERO);
        assert_eq!(n.topological_delay_of(out), by_paths, "{recipe:?}");
        // Suffix/arrival decomposition at every node of every path.
        let arr = n.arrivals(false, true);
        let suf = n.suffixes(out, false, true);
        for p in paths.iter().take(50) {
            for &node in p.gates() {
                let a = arr[node.index()];
                let s = suf[node.index()].expect("on a path to out");
                assert!(a + s <= by_paths, "{recipe:?}");
            }
        }
    }
}

/// The breakpoint chain enumerates exactly the distinct kmax values,
/// descending.
#[test]
fn breakpoints_match_brute_force() {
    for recipe in cases(0xB4EA) {
        let n = build(&recipe);
        let out = n.outputs()[0].1;
        let mut lens: Vec<Time> = all_paths(&n, out, 100_000)
            .expect("small circuits")
            .iter()
            .map(|p| p.length_max(&n))
            .collect();
        lens.sort_unstable();
        lens.dedup();
        lens.reverse();
        let mut cur = Time::MAX;
        for &expect in &lens {
            let got = next_breakpoint(&n, out, cur);
            assert_eq!(got, Some(expect), "{recipe:?}");
            cur = expect;
        }
        assert_eq!(next_breakpoint(&n, out, cur), None, "{recipe:?}");
    }
}

/// Straddling-path enumeration agrees with filtering all paths, at
/// every breakpoint.
#[test]
fn straddling_agrees_with_filter() {
    for recipe in cases(0x57AD) {
        let n = build(&recipe);
        let out = n.outputs()[0].1;
        let all = all_paths(&n, out, 100_000).expect("small circuits");
        let mut b = next_breakpoint(&n, out, Time::MAX);
        while let Some(bp) = b {
            let fast = straddling_paths(&n, out, bp, 100_000).expect("small");
            let slow: Vec<_> = all.iter().filter(|p| p.straddles(&n, bp)).collect();
            assert_eq!(fast.len(), slow.len(), "at {bp}: {recipe:?}");
            b = next_breakpoint(&n, out, bp);
        }
    }
}

/// write_bench ∘ parse_bench is the identity on functions.
#[test]
fn bench_round_trip() {
    for recipe in cases(0x2000) {
        let n = build(&recipe);
        let text = write_bench(&n).expect("no constants generated");
        let round = parse_bench(&text, unit_delays).expect("own output parses");
        assert_eq!(round.inputs().len(), n.inputs().len(), "{recipe:?}");
        let k = n.inputs().len();
        for bits in 0..(1u32 << k) {
            let v: Vec<bool> = (0..k).map(|i| (bits >> i) & 1 == 1).collect();
            assert_eq!(
                round.evaluate_outputs(&v),
                n.evaluate_outputs(&v),
                "{recipe:?}"
            );
        }
    }
}

/// Multi-output variant of [`build`]: exposes every third gate plus the
/// last as outputs, returning the netlist and each output's pool index
/// (inputs first, then gates — the indexing [`cone_set`] uses).
fn build_multi(recipe: &Recipe) -> (Netlist, Vec<usize>) {
    build_multi_impl(recipe, None)
}

/// [`build_multi`] plus one extra output on gate `extra` (appended last,
/// so existing output indices are stable).
fn build_multi_with_extra(recipe: &Recipe, extra: usize) -> (Netlist, Vec<usize>) {
    build_multi_impl(recipe, Some(extra))
}

fn build_multi_impl(recipe: &Recipe, extra: Option<usize>) -> (Netlist, Vec<usize>) {
    let mut b = Netlist::builder();
    let mut pool: Vec<_> = (0..recipe.n_inputs)
        .map(|i| b.input(&format!("x{i}")))
        .collect();
    for (g, (kind_raw, fanin_refs, lo, hi)) in recipe.gates.iter().enumerate() {
        let kind = match kind_raw % 8 {
            0 => GateKind::And,
            1 => GateKind::Or,
            2 => GateKind::Nand,
            3 => GateKind::Nor,
            4 => GateKind::Xor,
            5 => GateKind::Xnor,
            6 => GateKind::Buf,
            _ => GateKind::Not,
        };
        let mut fanins: Vec<_> = fanin_refs.iter().map(|&r| pool[r % pool.len()]).collect();
        if matches!(kind, GateKind::Not | GateKind::Buf) {
            fanins.truncate(1);
        }
        let delay = DelayBounds::new(Time::from_int(*lo), Time::from_int(*hi));
        pool.push(
            b.gate(kind, &format!("g{g}"), fanins, delay)
                .expect("unique names"),
        );
    }
    let n_gates = recipe.gates.len();
    let mut exposed: Vec<usize> = (0..n_gates).filter(|g| g % 3 == 0).collect();
    if exposed.last() != Some(&(n_gates - 1)) {
        exposed.push(n_gates - 1);
    }
    let out_pools: Vec<usize> = exposed.iter().map(|&g| recipe.n_inputs + g).collect();
    for &g in &exposed {
        b.output(&format!("o{g}"), pool[recipe.n_inputs + g]);
    }
    if let Some(extra) = extra {
        b.output("oextra", pool[recipe.n_inputs + extra]);
    }
    (b.finish().expect("outputs declared"), out_pools)
}

/// A gate's fanins resolved to pool indices, mirroring [`build_multi`]'s
/// resolution (including the unary truncation for NOT/BUF).
fn resolved_fanins(recipe: &Recipe, g: usize) -> Vec<usize> {
    let pool_len = recipe.n_inputs + g;
    let (kind_raw, refs, _, _) = &recipe.gates[g];
    let mut fanins: Vec<usize> = refs.iter().map(|&r| r % pool_len).collect();
    if kind_raw % 8 >= 6 {
        fanins.truncate(1);
    }
    fanins
}

/// The pool indices inside `out_pool`'s fanin cone (the slice's node
/// set), computed independently of `extract_cone_slice`.
fn cone_set(recipe: &Recipe, out_pool: usize) -> Vec<usize> {
    let mut seen = vec![false; recipe.n_inputs + recipe.gates.len()];
    let mut stack = vec![out_pool];
    while let Some(p) = stack.pop() {
        if seen[p] {
            continue;
        }
        seen[p] = true;
        if p >= recipe.n_inputs {
            stack.extend(resolved_fanins(recipe, p - recipe.n_inputs));
        }
    }
    (0..seen.len()).filter(|&i| seen[i]).collect()
}

/// Equal slices hash equally: rebuilding the same recipe reproduces
/// every cone signature bit-for-bit, and declaring an extra unrelated
/// output leaves every existing cone's signature untouched (so ECO
/// add-output edits never invalidate retained cones).
#[test]
fn cone_signatures_are_slice_determined() {
    for recipe in cases(0xC04E) {
        let (a, out_pools) = build_multi(&recipe);
        let (b, _) = build_multi(&recipe);
        for j in 0..out_pools.len() {
            assert_eq!(
                a.cone_signature(j),
                b.cone_signature(j),
                "output {j}: {recipe:?}"
            );
            assert_ne!(
                a.cone_signature(j),
                a.structural_signature(),
                "cone keys must never alias whole-netlist keys: {recipe:?}"
            );
        }
        // Expose one more (previously hidden) gate as an output; the
        // original outputs keep their indices and their signatures.
        if let Some(hidden) =
            (0..recipe.gates.len()).find(|g| !out_pools.contains(&(recipe.n_inputs + g)))
        {
            let (c, _) = build_multi_with_extra(&recipe, hidden);
            for j in 0..out_pools.len() {
                assert_eq!(
                    a.cone_signature(j),
                    c.cone_signature(j),
                    "adding output o{hidden} flipped cone {j}: {recipe:?}"
                );
            }
        }
    }
}

/// The invalidation dichotomy ECO correctness rests on: a gate-kind or
/// delay edit flips the signature of exactly the cones containing the
/// gate; a fanin rewire flips every containing cone whose slice node
/// set stays comparable (identical set, or different size — the only
/// escape is a slice isomorphism, which is delay-invisible by design);
/// and no edit of any kind ever flips a cone the gate is outside of.
#[test]
fn in_cone_edits_flip_signatures_and_outside_edits_never_do() {
    let mut fanin_flips = 0usize;
    for recipe in cases(0x51C3) {
        let (base, out_pools) = build_multi(&recipe);
        let base_sigs: Vec<Vec<u8>> = (0..out_pools.len())
            .map(|j| base.cone_signature(j))
            .collect();
        let base_cones: Vec<Vec<usize>> = out_pools.iter().map(|&p| cone_set(&recipe, p)).collect();
        for g in 0..recipe.gates.len() {
            let gp = recipe.n_inputs + g;

            let mut edits: Vec<(&str, Recipe)> = Vec::new();
            // Gate-function swap, binary kinds only (arity preserved).
            if recipe.gates[g].0 % 8 <= 5 {
                let mut m = recipe.clone();
                m.gates[g].0 = ((m.gates[g].0 % 8) + 1) % 6;
                edits.push(("kind", m));
            }
            // Delay re-annotation: widen the upper bound by one unit.
            let mut m = recipe.clone();
            m.gates[g].3 += 1;
            edits.push(("delay", m));

            for (label, edited) in &edits {
                let (mutated, _) = build_multi(edited);
                for j in 0..out_pools.len() {
                    let inside = base_cones[j].contains(&gp);
                    let sig = mutated.cone_signature(j);
                    if inside {
                        assert_ne!(
                            sig, base_sigs[j],
                            "{label} edit at g{g} inside cone {j} kept the hash: {recipe:?}"
                        );
                    } else {
                        assert_eq!(
                            sig, base_sigs[j],
                            "{label} edit at g{g} outside cone {j} flipped the hash: {recipe:?}"
                        );
                    }
                }
            }

            // Fanin rewire: first slot to the next pool signal.
            let pool_len = recipe.n_inputs + g;
            if pool_len < 2 || recipe.gates[g].1.is_empty() {
                continue;
            }
            let mut m = recipe.clone();
            let old = m.gates[g].1[0] % pool_len;
            m.gates[g].1[0] = (old + 1) % pool_len;
            let (mutated, _) = build_multi(&m);
            for j in 0..out_pools.len() {
                let inside = base_cones[j].contains(&gp);
                let sig = mutated.cone_signature(j);
                if !inside {
                    assert_eq!(
                        sig, base_sigs[j],
                        "rewire at g{g} outside cone {j} flipped the hash: {recipe:?}"
                    );
                    continue;
                }
                let after = cone_set(&m, out_pools[j]);
                if after == base_cones[j] || after.len() != base_cones[j].len() {
                    assert_ne!(
                        sig, base_sigs[j],
                        "rewire at g{g} inside cone {j} kept the hash: {recipe:?}"
                    );
                    fanin_flips += 1;
                }
            }
        }
    }
    assert!(
        fanin_flips > 100,
        "the suite must exercise many guaranteed-flip rewires, saw {fanin_flips}"
    );
}

/// The structural transforms preserve functions and topological
/// delay (decompose/strash/sweep).
#[test]
fn transforms_preserve_function() {
    for recipe in cases(0x7F02) {
        let n = build(&recipe);
        let k = n.inputs().len();
        for (label, m) in [
            ("decompose", decompose_to_binary(&n)),
            ("strash", strash(&n)),
            ("sweep", sweep(&n)),
        ] {
            for bits in 0..(1u32 << k) {
                let v: Vec<bool> = (0..k).map(|i| (bits >> i) & 1 == 1).collect();
                assert_eq!(
                    m.evaluate_outputs(&v),
                    n.evaluate_outputs(&v),
                    "{label} at {bits:#b}: {recipe:?}"
                );
            }
            assert_eq!(
                m.topological_delay(),
                n.topological_delay(),
                "{label} changed the topological delay: {recipe:?}"
            );
        }
    }
}
