//! Property tests for the netlist substrate: timing decompositions,
//! path queries vs brute force, and parser round-trips on random
//! circuits.
//!
//! Cases are generated from the in-repo SplitMix64 stream — hermetic and
//! bit-stable, no external property-test crates.

use tbf_logic::generators::random::SplitMix64;
use tbf_logic::parsers::bench::{parse_bench, write_bench};
use tbf_logic::parsers::unit_delays;
use tbf_logic::paths::{all_paths, next_breakpoint, straddling_paths};
use tbf_logic::transform::{decompose_to_binary, strash, sweep};
use tbf_logic::{DelayBounds, GateKind, Netlist, Time};

#[derive(Clone, Debug)]
struct Recipe {
    n_inputs: usize,
    gates: Vec<(u8, Vec<usize>, i64, i64)>,
}

fn gen_recipe(rng: &mut SplitMix64) -> Recipe {
    let n_inputs = 2 + rng.below(3);
    let n_gates = 1 + rng.below(11);
    let gates = (0..n_gates)
        .map(|_| {
            let kind = rng.below(8) as u8;
            let n_fanins = 1 + rng.below(3);
            let fanins = (0..n_fanins).map(|_| rng.below(64)).collect();
            let lo = 1 + rng.below(5) as i64;
            let spread = rng.below(4) as i64;
            (kind, fanins, lo, lo + spread)
        })
        .collect();
    Recipe { n_inputs, gates }
}

fn build(recipe: &Recipe) -> Netlist {
    let mut b = Netlist::builder();
    let mut pool: Vec<_> = (0..recipe.n_inputs)
        .map(|i| b.input(&format!("x{i}")))
        .collect();
    for (g, (kind_raw, fanin_refs, lo, hi)) in recipe.gates.iter().enumerate() {
        let kind = match kind_raw % 8 {
            0 => GateKind::And,
            1 => GateKind::Or,
            2 => GateKind::Nand,
            3 => GateKind::Nor,
            4 => GateKind::Xor,
            5 => GateKind::Xnor,
            6 => GateKind::Buf,
            _ => GateKind::Not,
        };
        let mut fanins: Vec<_> = fanin_refs.iter().map(|&r| pool[r % pool.len()]).collect();
        if matches!(kind, GateKind::Not | GateKind::Buf) {
            fanins.truncate(1);
        }
        let delay = DelayBounds::new(Time::from_int(*lo), Time::from_int(*hi));
        pool.push(
            b.gate(kind, &format!("g{g}"), fanins, delay)
                .expect("unique names"),
        );
    }
    b.output("f", *pool.last().expect("non-empty"));
    b.finish().expect("one output")
}

fn cases(salt: u64) -> impl Iterator<Item = Recipe> {
    (0..96u64).map(move |i| {
        let mut rng = SplitMix64::new(i.wrapping_mul(0x2545F491).wrapping_add(salt));
        gen_recipe(&mut rng)
    })
}

/// The topological delay equals the maximum explicit path length, and
/// arrivals decompose as prefix + suffix along every path.
#[test]
fn topological_delay_is_max_path_length() {
    for recipe in cases(0x70B0) {
        let n = build(&recipe);
        let out = n.outputs()[0].1;
        let paths = all_paths(&n, out, 100_000).expect("small circuits");
        let by_paths = paths
            .iter()
            .map(|p| p.length_max(&n))
            .max()
            .unwrap_or(Time::ZERO);
        assert_eq!(n.topological_delay_of(out), by_paths, "{recipe:?}");
        // Suffix/arrival decomposition at every node of every path.
        let arr = n.arrivals(false, true);
        let suf = n.suffixes(out, false, true);
        for p in paths.iter().take(50) {
            for &node in p.gates() {
                let a = arr[node.index()];
                let s = suf[node.index()].expect("on a path to out");
                assert!(a + s <= by_paths, "{recipe:?}");
            }
        }
    }
}

/// The breakpoint chain enumerates exactly the distinct kmax values,
/// descending.
#[test]
fn breakpoints_match_brute_force() {
    for recipe in cases(0xB4EA) {
        let n = build(&recipe);
        let out = n.outputs()[0].1;
        let mut lens: Vec<Time> = all_paths(&n, out, 100_000)
            .expect("small circuits")
            .iter()
            .map(|p| p.length_max(&n))
            .collect();
        lens.sort_unstable();
        lens.dedup();
        lens.reverse();
        let mut cur = Time::MAX;
        for &expect in &lens {
            let got = next_breakpoint(&n, out, cur);
            assert_eq!(got, Some(expect), "{recipe:?}");
            cur = expect;
        }
        assert_eq!(next_breakpoint(&n, out, cur), None, "{recipe:?}");
    }
}

/// Straddling-path enumeration agrees with filtering all paths, at
/// every breakpoint.
#[test]
fn straddling_agrees_with_filter() {
    for recipe in cases(0x57AD) {
        let n = build(&recipe);
        let out = n.outputs()[0].1;
        let all = all_paths(&n, out, 100_000).expect("small circuits");
        let mut b = next_breakpoint(&n, out, Time::MAX);
        while let Some(bp) = b {
            let fast = straddling_paths(&n, out, bp, 100_000).expect("small");
            let slow: Vec<_> = all.iter().filter(|p| p.straddles(&n, bp)).collect();
            assert_eq!(fast.len(), slow.len(), "at {bp}: {recipe:?}");
            b = next_breakpoint(&n, out, bp);
        }
    }
}

/// write_bench ∘ parse_bench is the identity on functions.
#[test]
fn bench_round_trip() {
    for recipe in cases(0x2000) {
        let n = build(&recipe);
        let text = write_bench(&n).expect("no constants generated");
        let round = parse_bench(&text, unit_delays).expect("own output parses");
        assert_eq!(round.inputs().len(), n.inputs().len(), "{recipe:?}");
        let k = n.inputs().len();
        for bits in 0..(1u32 << k) {
            let v: Vec<bool> = (0..k).map(|i| (bits >> i) & 1 == 1).collect();
            assert_eq!(
                round.evaluate_outputs(&v),
                n.evaluate_outputs(&v),
                "{recipe:?}"
            );
        }
    }
}

/// The structural transforms preserve functions and topological
/// delay (decompose/strash/sweep).
#[test]
fn transforms_preserve_function() {
    for recipe in cases(0x7F02) {
        let n = build(&recipe);
        let k = n.inputs().len();
        for (label, m) in [
            ("decompose", decompose_to_binary(&n)),
            ("strash", strash(&n)),
            ("sweep", sweep(&n)),
        ] {
            for bits in 0..(1u32 << k) {
                let v: Vec<bool> = (0..k).map(|i| (bits >> i) & 1 == 1).collect();
                assert_eq!(
                    m.evaluate_outputs(&v),
                    n.evaluate_outputs(&v),
                    "{label} at {bits:#b}: {recipe:?}"
                );
            }
            assert_eq!(
                m.topological_delay(),
                n.topological_delay(),
                "{label} changed the topological delay: {recipe:?}"
            );
        }
    }
}
