//! Deterministic parser fuzzing: all four front-end parsers
//! (`.bench`, BLIF, AIGER, structural Verilog) must return a typed
//! `NetlistError` on arbitrary input — never panic — and must
//! round-trip everything the writers emit.
//!
//! Seeded with the in-repo SplitMix64 so failures reproduce bit-for-bit
//! on every platform (the failing seed is printed on assertion).

use std::panic::{catch_unwind, AssertUnwindSafe};

use tbf_logic::generators::random::{random_dag, SplitMix64};
use tbf_logic::parsers::aiger::parse_aiger;
use tbf_logic::parsers::bench::{parse_bench, write_bench};
use tbf_logic::parsers::blif::{parse_blif, write_blif};
use tbf_logic::parsers::unit_delays;
use tbf_logic::parsers::verilog::parse_verilog;
use tbf_logic::Netlist;

/// Runs all four parsers on `text`, asserting they produce `Ok`/`Err`
/// rather than panicking, and that any accepted netlist is internally
/// usable.
fn parsers_survive(text: &str, seed: u64) {
    for (label, run) in [
        (
            "bench",
            (|t: &str| parse_bench(t, unit_delays)) as fn(&str) -> _,
        ),
        ("blif", |t: &str| parse_blif(t, unit_delays)),
        ("verilog", |t: &str| parse_verilog(t, unit_delays)),
        ("aiger", |t: &str| parse_aiger(t.as_bytes(), unit_delays)),
    ] {
        let outcome = catch_unwind(AssertUnwindSafe(|| run(text)));
        match outcome {
            Err(_) => panic!("{label} parser panicked (seed {seed}):\n{text}"),
            Ok(Ok(n)) => {
                // Accepted input must yield a coherent netlist.
                let inputs = vec![false; n.inputs().len()];
                let outs = n.evaluate_outputs(&inputs);
                assert_eq!(outs.len(), n.outputs().len(), "seed {seed}");
            }
            Ok(Err(_)) => {} // typed rejection is the expected common case
        }
    }
}

#[test]
fn byte_soup_never_panics() {
    // Printable-ish chars skewed toward parser-significant bytes.
    const PALETTE: &[char] = &[
        'a', 'b', 'c', 'f', 'g', 'x', 'y', '0', '1', '2', '-', '.', '(', ')', '=', ',', ' ', ' ',
        '\n', '\n', '\t', '\\', '#', '_', 'I', 'N', 'P', 'U', 'T', 'O', 'A', 'D', 'R', 'X', 'V',
        'E', 'n', 'm', 'o', 'd', 'e', 'l', 's', 't', 'u', 'p', 'r', 'h',
    ];
    for seed in 0..300u64 {
        let mut rng = SplitMix64::new(seed);
        let len = rng.below(400);
        let text: String = (0..len)
            .map(|_| PALETTE[rng.below(PALETTE.len())])
            .collect();
        parsers_survive(&text, seed);
    }
}

#[test]
fn token_soup_never_panics() {
    // Structured fuzz: shuffle plausible directive fragments so the deep
    // parser paths (covers, continuations, gate lists) actually run.
    const FRAGMENTS: &[&str] = &[
        ".model m",
        ".inputs a b",
        ".inputs a",
        ".outputs f",
        ".outputs f g",
        ".names a b f",
        ".names f",
        ".names a f",
        ".end",
        ".latch a q re clk 0",
        ".subckt foo a=b",
        "11 1",
        "0- 1",
        "-- 0",
        "1 1",
        "0 1",
        "1",
        "0",
        "1x 1",
        "1 2",
        "11- 1",
        "\\",
        "INPUT(a)",
        "INPUT(b)",
        "OUTPUT(f)",
        "OUTPUT(g)",
        "f = AND(a, b)",
        "g = NOT(a)",
        "f = XOR(a, b)",
        "f = FROB(a)",
        "f = AND(a",
        "g = OR(f, ghost)",
        "# comment",
        "f = BUF(f)",
        "",
        // Pragma and `.gate` fragments so the new front-end paths run.
        "# @tbf delay 1 2",
        "# @tbf delay -3 2",
        "# @tbf output f g",
        "f = AND(a, b) # @tbf delay 5 7",
        ".gate and2 i0=a i1=b O=f",
        ".gate inv i0=a O=f # @tbf delay 1 1",
        ".gate frob i0=a O=f",
        // Verilog fragments.
        "module m (a, f);",
        "module m;",
        "input a;",
        "input a, b;",
        "output f;",
        "wire w;",
        "not (f, a);",
        "not(f, a);",
        "and #(1.5) g (f, a, b);",
        "and #(2, 1) g (f, a, b);",
        "assign f = a;",
        "endmodule",
        // AIGER header/body fragments.
        "aag 3 1 0 1 2",
        "aag 0 0 0 0 0",
        "aig 1 1 0 1 0",
        "6 2 4",
        "2",
        "3",
        "i0 a",
        "o0 f",
        "c",
    ];
    for seed in 0..300u64 {
        let mut rng = SplitMix64::new(seed);
        let lines = 1 + rng.below(20);
        let text: String = (0..lines)
            .map(|_| FRAGMENTS[rng.below(FRAGMENTS.len())])
            .collect::<Vec<_>>()
            .join("\n");
        parsers_survive(&text, seed);
    }
}

#[test]
fn aiger_binary_soup_never_panics() {
    // Raw byte soup behind a plausible binary header: exercises the
    // LEB128 delta decoder, the symbol table, and the EOF paths with
    // arbitrary (frequently non-UTF-8) tails.
    const HEADERS: &[&[u8]] = &[
        b"aig 3 1 0 1 2\n",
        b"aig 5 2 0 1 3\n",
        b"aag 3 1 0 1 2\n",
        b"aig 16777216 1 0 1 16777215\n",
        b"",
    ];
    for seed in 0..300u64 {
        let mut rng = SplitMix64::new(seed ^ 0xA16E5);
        let mut bytes = HEADERS[rng.below(HEADERS.len())].to_vec();
        let len = rng.below(200);
        bytes.extend((0..len).map(|_| (rng.next_u64() & 0xFF) as u8));
        let outcome = catch_unwind(AssertUnwindSafe(|| parse_aiger(&bytes, unit_delays)));
        match outcome {
            Err(_) => panic!("aiger parser panicked on binary soup (seed {seed}): {bytes:?}"),
            Ok(Ok(n)) => {
                let inputs = vec![false; n.inputs().len()];
                assert_eq!(n.evaluate_outputs(&inputs).len(), n.outputs().len());
            }
            Ok(Err(_)) => {}
        }
    }
}

/// Samples input vectors and checks `round` computes the same outputs as
/// `original`.
fn assert_equivalent(original: &Netlist, round: &Netlist, seed: u64, label: &str) {
    assert_eq!(
        original.inputs().len(),
        round.inputs().len(),
        "{label} seed {seed}"
    );
    let k = original.inputs().len();
    let mut rng = SplitMix64::new(seed ^ 0xDEAD_BEEF);
    let vectors: Vec<Vec<bool>> = if k <= 10 {
        (0..(1usize << k))
            .map(|m| (0..k).map(|i| (m >> i) & 1 == 1).collect())
            .collect()
    } else {
        (0..64)
            .map(|_| (0..k).map(|_| rng.coin()).collect())
            .collect()
    };
    for v in vectors {
        assert_eq!(
            original.evaluate_outputs(&v),
            round.evaluate_outputs(&v),
            "{label} seed {seed} diverges on {v:?}"
        );
    }
}

#[test]
fn random_dags_round_trip_through_both_formats() {
    for seed in 0..40u64 {
        let n = random_dag(4, 12, 3, seed);

        let blif = write_blif(&n, "fuzz")
            .unwrap_or_else(|e| panic!("write_blif failed (seed {seed}): {e}"));
        let round = parse_blif(&blif, unit_delays)
            .unwrap_or_else(|e| panic!("blif round-trip failed (seed {seed}): {e}\n{blif}"));
        assert_equivalent(&n, &round, seed, "blif");

        let bench =
            write_bench(&n).unwrap_or_else(|e| panic!("write_bench failed (seed {seed}): {e}"));
        let round = parse_bench(&bench, unit_delays)
            .unwrap_or_else(|e| panic!("bench round-trip failed (seed {seed}): {e}\n{bench}"));
        assert_equivalent(&n, &round, seed, "bench");
    }
}
