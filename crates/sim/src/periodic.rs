//! Periodic-input (cycle-time) simulation support — the `P` input family
//! of the paper's Definition 1.
//!
//! In an FSM, the combinational core sees a new vector every clock
//! period `T` and its outputs must have settled to the static value of
//! vector `k` before edge `k+1` samples them. [`settles_within`] checks
//! that property dynamically for one delay assignment and vector train;
//! [`min_settling_period`] binary-searches the smallest passing period —
//! a *lower* bound estimate of the cycle time (exact over the sampled
//! trains and delays only), complementing the sound upper bound
//! `D(C, ·, ω⁻)` from `tbf-core`.

use tbf_logic::{Netlist, Time};

use crate::engine::simulate;
use crate::waveform::Waveform;

/// Builds per-input waveforms applying `vectors[k]` at time `k·period`,
/// holding `initial` beforehand.
///
/// # Panics
///
/// Panics if a vector's arity differs from `initial.len()` or
/// `period ≤ 0`.
pub fn periodic_waveforms(initial: &[bool], vectors: &[Vec<bool>], period: Time) -> Vec<Waveform> {
    assert!(period > Time::ZERO, "period must be positive");
    let mut waveforms: Vec<Waveform> = initial.iter().map(|&v| Waveform::constant(v)).collect();
    for (k, vector) in vectors.iter().enumerate() {
        assert_eq!(vector.len(), initial.len(), "vector arity mismatch");
        let at = period * k as i64;
        for (w, &v) in waveforms.iter_mut().zip(vector) {
            w.record(at, v);
        }
    }
    waveforms
}

/// Checks the FSM sampling property: with `vectors[k]` applied at
/// `k·period`, every primary output holds the static value of vector `k`
/// just before edge `k+1` (and the final vector settles within one more
/// period).
///
/// # Panics
///
/// Panics on arity mismatches or a non-positive period.
pub fn settles_within(
    netlist: &Netlist,
    delays: &[Time],
    initial: &[bool],
    vectors: &[Vec<bool>],
    period: Time,
) -> bool {
    let waveforms = periodic_waveforms(initial, vectors, period);
    let result = simulate(netlist, delays, &waveforms);
    for (k, vector) in vectors.iter().enumerate() {
        let expect = netlist.evaluate_outputs(vector);
        let sample_at = period * (k as i64 + 1);
        for (&(_, out), &want) in netlist.outputs().iter().zip(&expect) {
            if result.waveform(out).value_before(sample_at) != want {
                return false;
            }
        }
    }
    true
}

/// Smallest period (on the fixed-point grid, within `[lo, hi]`) at which
/// every sampled train/delay combination settles — by bisection over the
/// period, sampling `trains` random vector trains of length `train_len`
/// and `delay_samples` in-bounds delay assignments per probe.
///
/// A dynamic **lower-bound estimate** of the minimum cycle time: real
/// worst cases may be missed by sampling (use `tbf-core`'s
/// `sequences_delay` for the sound upper bound).
///
/// # Panics
///
/// Panics if `lo > hi` or `lo ≤ 0`.
#[allow(clippy::too_many_arguments)]
pub fn min_settling_period(
    netlist: &Netlist,
    lo: Time,
    hi: Time,
    trains: usize,
    train_len: usize,
    delay_samples: usize,
    mut rand_u64: impl FnMut() -> u64,
) -> Time {
    assert!(Time::ZERO < lo && lo <= hi, "bad period window");
    let n_in = netlist.inputs().len();
    // Pre-sample the scenario set so every probed period faces the same
    // adversaries (keeps the predicate monotone in practice).
    let mut scenarios = Vec::new();
    for _ in 0..trains {
        let initial: Vec<bool> = (0..n_in).map(|_| rand_u64() & 1 == 1).collect();
        let train: Vec<Vec<bool>> = (0..train_len)
            .map(|_| (0..n_in).map(|_| rand_u64() & 1 == 1).collect())
            .collect();
        for _ in 0..delay_samples {
            let delays = crate::engine::sample_delays(netlist, &mut rand_u64);
            scenarios.push((initial.clone(), train.clone(), delays));
        }
    }
    let passes = |period: Time| {
        scenarios
            .iter()
            .all(|(initial, train, delays)| settles_within(netlist, delays, initial, train, period))
    };
    let (mut lo_s, mut hi_s) = (lo.scaled(), hi.scaled());
    if passes(Time::from_scaled(lo_s)) {
        return lo;
    }
    // Invariant: lo fails, hi passes (hi is clamped to passing; if even
    // hi fails, return hi as the best known).
    if !passes(Time::from_scaled(hi_s)) {
        return hi;
    }
    while lo_s + 1 < hi_s {
        let mid = lo_s + (hi_s - lo_s) / 2;
        if passes(Time::from_scaled(mid)) {
            hi_s = mid;
        } else {
            lo_s = mid;
        }
    }
    Time::from_scaled(hi_s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::max_delays;
    use tbf_logic::{DelayBounds, GateKind};

    fn t(x: i64) -> Time {
        Time::from_int(x)
    }

    fn chain(total: i64) -> Netlist {
        let mut b = Netlist::builder();
        let x = b.input("x");
        let g = b
            .gate(GateKind::Not, "g", vec![x], DelayBounds::fixed(t(total)))
            .unwrap();
        b.output("f", g);
        b.finish().unwrap()
    }

    #[test]
    fn periodic_waveforms_switch_on_schedule() {
        let ws = periodic_waveforms(&[false], &[vec![true], vec![false], vec![true]], t(5));
        assert!(ws[0].value_at(t(1)));
        assert!(!ws[0].value_at(t(6)));
        assert!(ws[0].value_at(t(11)));
    }

    #[test]
    fn settling_respects_the_delay() {
        let n = chain(4);
        let delays = max_delays(&n);
        let train = vec![vec![true], vec![false], vec![true], vec![false]];
        // Period 5 > delay 4: settles. Period 3 < 4: output lags a cycle.
        assert!(settles_within(&n, &delays, &[false], &train, t(5)));
        assert!(!settles_within(&n, &delays, &[false], &train, t(3)));
        // Exactly the delay: the transition lands at the edge; sampling
        // just before it still sees the stale value.
        assert!(!settles_within(&n, &delays, &[false], &train, t(4)));
        assert!(settles_within(
            &n,
            &delays,
            &[false],
            &train,
            t(4) + Time::EPSILON
        ));
    }

    #[test]
    fn min_period_brackets_the_delay() {
        let n = chain(4);
        let mut s = 1u64;
        let mut rng = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let p = min_settling_period(&n, t(1), t(10), 8, 4, 2, &mut rng);
        // The inverter chain needs just over 4 units.
        assert!(p > t(4) && p <= t(5), "got {p}");
    }

    #[test]
    fn constant_output_settles_at_any_period() {
        let mut b = Netlist::builder();
        let x = b.input("x");
        let nx = b
            .gate(GateKind::Not, "nx", vec![x], DelayBounds::fixed(t(1)))
            .unwrap();
        let g = b
            .gate(GateKind::And, "g", vec![x, nx], DelayBounds::fixed(t(1)))
            .unwrap();
        b.output("f", g);
        let n = b.finish().unwrap();
        // x·x̄ = 0: glitches exist but the sampled value just before each
        // edge is the settled 0 whenever period > 2.
        let train = vec![vec![true], vec![false], vec![true]];
        assert!(settles_within(&n, &max_delays(&n), &[false], &train, t(3)));
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_panics() {
        let _ = periodic_waveforms(&[false], &[vec![true]], Time::ZERO);
    }
}
