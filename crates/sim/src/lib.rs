//! # tbf-sim — Event-driven gate-level timing simulation
//!
//! The dynamic-validation substrate for the Timed-Boolean-Function delay
//! algorithms: simulates a [`tbf_logic::Netlist`] under a *concrete* gate
//! delay assignment and arbitrary input [`Waveform`]s, with pure
//! transport-delay semantics (`out(t) = f(in(t − d))`) and optional
//! inertial filtering.
//!
//! The exact-delay theorems are checked against this engine throughout
//! the workspace: no sampled delay assignment and input pair/sequence may
//! ever produce a later final output transition than the computed exact
//! delay, and on small circuits the bound is attained.
//!
//! # Example
//!
//! ```
//! use tbf_logic::generators::figures::figure6_glitch;
//! use tbf_logic::Time;
//! use tbf_sim::{simulate, max_delays, Stimulus};
//!
//! // Figure 6: with fixed delays the AND output never moves.
//! let n = figure6_glitch();
//! let stim = Stimulus::vector_pair(&[false], &[true]);
//! let result = simulate(&n, &max_delays(&n), &stim.waveforms(&n));
//! assert_eq!(result.last_output_transition(&n), None);
//! # let _ = Time::ZERO;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algebra;
mod engine;
pub mod montecarlo;
pub mod periodic;
mod stimulus;
mod waveform;

pub use engine::{max_delays, min_delays, sample_delays, simulate, SimResult};
pub use stimulus::Stimulus;
pub use waveform::Waveform;
