//! Piecewise-constant Boolean waveforms.

use tbf_logic::Time;

/// A Boolean signal over time: an initial value (held since `t = −∞`) and
/// a sorted list of value-changing transitions.
///
/// The value *at* a transition instant is the new value (right-continuous
/// convention); [`value_before`](Self::value_before) gives the `t⁻`
/// limit used by the paper's `f(b⁻)` evaluations.
///
/// # Example
///
/// ```
/// use tbf_sim::Waveform;
/// use tbf_logic::Time;
///
/// let mut w = Waveform::constant(false);
/// w.record(Time::from_int(2), true);
/// w.record(Time::from_int(5), false);
/// assert!(!w.value_at(Time::from_int(1)));
/// assert!(w.value_at(Time::from_int(2)));
/// assert!(w.value_before(Time::from_int(5)));
/// assert!(!w.value_at(Time::from_int(5)));
/// assert_eq!(w.last_transition(), Some(Time::from_int(5)));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Waveform {
    initial: bool,
    transitions: Vec<(Time, bool)>,
}

impl Waveform {
    /// A constant signal.
    pub fn constant(value: bool) -> Waveform {
        Waveform {
            initial: value,
            transitions: Vec::new(),
        }
    }

    /// A step: `before` until `at`, `after` from `at` on. No transition
    /// is stored when `before == after`.
    pub fn step(before: bool, at: Time, after: bool) -> Waveform {
        let mut w = Waveform::constant(before);
        w.record(at, after);
        w
    }

    /// A waveform from explicit transitions (unsorted input accepted;
    /// redundant entries dropped).
    pub fn from_transitions(initial: bool, mut transitions: Vec<(Time, bool)>) -> Waveform {
        transitions.sort_by_key(|&(t, _)| t);
        let mut w = Waveform::constant(initial);
        for (t, v) in transitions {
            w.record(t, v);
        }
        w
    }

    /// The value held since `t = −∞`.
    pub fn initial(&self) -> bool {
        self.initial
    }

    /// The value-changing transitions, ascending in time.
    pub fn transitions(&self) -> &[(Time, bool)] {
        &self.transitions
    }

    /// The signal value at `t` (right-continuous).
    pub fn value_at(&self, t: Time) -> bool {
        match self.transitions.partition_point(|&(tt, _)| tt <= t) {
            0 => self.initial,
            k => self.transitions[k - 1].1,
        }
    }

    /// The signal value just before `t` (the `t⁻` limit).
    pub fn value_before(&self, t: Time) -> bool {
        match self.transitions.partition_point(|&(tt, _)| tt < t) {
            0 => self.initial,
            k => self.transitions[k - 1].1,
        }
    }

    /// The final (settled) value.
    pub fn final_value(&self) -> bool {
        self.transitions.last().map_or(self.initial, |&(_, v)| v)
    }

    /// The time of the last transition, or `None` for a constant signal.
    pub fn last_transition(&self) -> Option<Time> {
        self.transitions.last().map(|&(t, _)| t)
    }

    /// Appends or merges a transition at `t` to value `v`.
    ///
    /// Same-instant updates overwrite each other (simultaneous events
    /// collapse); updates that do not change the signal are dropped.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than an already recorded transition —
    /// the simulator always records in event order.
    pub fn record(&mut self, t: Time, v: bool) {
        if let Some(&(last_t, _)) = self.transitions.last() {
            assert!(t >= last_t, "record out of order: {t:?} after {last_t:?}");
            if t == last_t {
                // Replace the simultaneous transition, then drop it if it
                // became a no-op.
                self.transitions.pop();
                let prev = self.final_value();
                if v != prev {
                    self.transitions.push((t, v));
                }
                return;
            }
        }
        if v != self.final_value() {
            self.transitions.push((t, v));
        }
    }

    /// Adds a pulse of the given `value` spanning `[start, end)` on top of
    /// the waveform's *final* segment. Intended for building stimulus
    /// trains; `start` must not precede the last existing transition.
    ///
    /// # Panics
    ///
    /// Panics if `start >= end` or the pulse overlaps recorded history.
    pub fn add_pulse(&mut self, start: Time, end: Time, value: bool) {
        assert!(start < end, "empty pulse");
        let restore = self.final_value();
        self.record(start, value);
        self.record(end, restore);
    }

    /// Removes pulses strictly narrower than `width` (inertial-delay
    /// filtering, applied repeatedly to a fixed point). The initial and
    /// final values are preserved.
    pub fn filter_inertial(&self, width: Time) -> Waveform {
        let mut cur = self.clone();
        loop {
            let mut out = Waveform::constant(cur.initial);
            let mut changed = false;
            let ts = cur.transitions.clone();
            let mut i = 0;
            while i < ts.len() {
                let (t, v) = ts[i];
                if let Some(&(t2, _)) = ts.get(i + 1) {
                    if t2 - t < width {
                        // Pulse [t, t2) narrower than the inertia: drop
                        // both edges.
                        changed = true;
                        i += 2;
                        continue;
                    }
                }
                out.record(t, v);
                i += 1;
            }
            if !changed {
                return out;
            }
            cur = out;
        }
    }

    /// True if the waveform never changes.
    pub fn is_constant(&self) -> bool {
        self.transitions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: i64) -> Time {
        Time::from_int(x)
    }

    #[test]
    fn constant_waveform() {
        let w = Waveform::constant(true);
        assert!(w.value_at(t(-100)));
        assert!(w.value_at(t(100)));
        assert!(w.is_constant());
        assert_eq!(w.last_transition(), None);
        assert!(w.final_value());
    }

    #[test]
    fn step_semantics() {
        let w = Waveform::step(false, Time::ZERO, true);
        assert!(!w.value_at(t(-1)));
        assert!(w.value_at(Time::ZERO)); // right-continuous
        assert!(!w.value_before(Time::ZERO));
        assert!(w.value_at(t(1)));
        assert_eq!(w.last_transition(), Some(Time::ZERO));
        // Degenerate step.
        let w2 = Waveform::step(true, Time::ZERO, true);
        assert!(w2.is_constant());
    }

    #[test]
    fn record_drops_noops_and_merges_simultaneous() {
        let mut w = Waveform::constant(false);
        w.record(t(1), false); // no-op
        assert!(w.is_constant());
        w.record(t(2), true);
        w.record(t(2), false); // cancels the simultaneous transition
        assert!(w.is_constant());
        w.record(t(3), true);
        w.record(t(3), true); // same-instant same-value
        assert_eq!(w.transitions(), &[(t(3), true)]);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn out_of_order_record_panics() {
        let mut w = Waveform::constant(false);
        w.record(t(5), true);
        w.record(t(4), false);
    }

    #[test]
    fn from_transitions_sorts_and_normalizes() {
        let w = Waveform::from_transitions(false, vec![(t(5), false), (t(1), true), (t(3), true)]);
        // (3, true) is a no-op after (1, true).
        assert_eq!(w.transitions(), &[(t(1), true), (t(5), false)]);
    }

    #[test]
    fn pulses() {
        let mut w = Waveform::constant(false);
        w.add_pulse(t(2), t(3), true);
        w.add_pulse(t(10), t(11), true);
        assert!(!w.value_at(t(1)));
        assert!(w.value_at(t(2)));
        assert!(!w.value_at(t(3)));
        assert!(w.value_at(t(10)));
        assert_eq!(w.last_transition(), Some(t(11)));
        assert!(!w.final_value());
    }

    #[test]
    fn inertial_filter_removes_narrow_pulses() {
        let mut w = Waveform::constant(false);
        w.add_pulse(t(2), t(3), true); // width 1
        w.add_pulse(t(10), t(15), true); // width 5
        let f = w.filter_inertial(t(2));
        assert_eq!(f.transitions(), &[(t(10), true), (t(15), false)]);
        // Width-5 pulse survives a width-5 filter (strictly narrower only).
        let f2 = w.filter_inertial(t(5));
        assert_eq!(f2.transitions(), &[(t(10), true), (t(15), false)]);
        let f3 = w.filter_inertial(t(6));
        assert!(f3.is_constant());
    }

    #[test]
    fn inertial_filter_cascades() {
        // Removing a narrow pulse can merge segments into another narrow
        // pulse; the filter iterates to a fixed point.
        let w = Waveform::from_transitions(
            false,
            vec![
                (t(0), true),
                (t(10), false), // wide high [0,10)
                (t(11), true),  // narrow low [10,11)
                (t(12), false), // narrow high [11,12)
            ],
        );
        let f = w.filter_inertial(t(2));
        // Narrow [10,11) low pulse dropped → high from 0 to 12 → the
        // trailing [11,12) pulse merges; fixed point: high [0, 12).
        assert!(!f.final_value());
        assert_eq!(f.transitions().first(), Some(&(t(0), true)));
    }
}
