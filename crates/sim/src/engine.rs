//! The event-driven simulation core.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use tbf_logic::{Netlist, NodeId, Time};

use crate::waveform::Waveform;

/// The result of a [`simulate`] run: one waveform per netlist node.
#[derive(Clone, Debug)]
pub struct SimResult {
    waveforms: Vec<Waveform>,
}

impl SimResult {
    /// The waveform of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from the simulated netlist.
    pub fn waveform(&self, id: NodeId) -> &Waveform {
        &self.waveforms[id.index()]
    }

    /// All node waveforms, indexed by node.
    pub fn waveforms(&self) -> &[Waveform] {
        &self.waveforms
    }

    /// The latest transition over the primary outputs, or `None` if no
    /// output ever changes. This is the simulated "arrival time of the
    /// last output transition" of Definition 1.
    pub fn last_output_transition(&self, netlist: &Netlist) -> Option<Time> {
        netlist
            .outputs()
            .iter()
            .filter_map(|&(_, id)| self.waveforms[id.index()].last_transition())
            .max()
    }

    /// The settled values of the primary outputs.
    pub fn final_outputs(&self, netlist: &Netlist) -> Vec<bool> {
        netlist
            .outputs()
            .iter()
            .map(|&(_, id)| self.waveforms[id.index()].final_value())
            .collect()
    }
}

/// Simulates `netlist` with the concrete per-node `delays` under the
/// given per-input `waveforms`, with pure transport-delay semantics:
/// every gate `g` satisfies `out_g(t) = f(inputs(t − d_g))` exactly.
///
/// # Panics
///
/// Panics if `delays.len() != netlist.len()` or
/// `inputs.len() != netlist.inputs().len()`.
///
/// # Example
///
/// ```
/// use tbf_logic::{GateKind, Netlist, DelayBounds, Time};
/// use tbf_sim::{simulate, Stimulus, max_delays};
///
/// let mut b = Netlist::builder();
/// let a = b.input("a");
/// let g = b.gate(GateKind::Not, "g", vec![a], DelayBounds::fixed(Time::from_int(3)))?;
/// b.output("f", g);
/// let n = b.finish()?;
/// let stim = Stimulus::vector_pair(&[false], &[true]);
/// let r = simulate(&n, &max_delays(&n), &stim.waveforms(&n));
/// assert_eq!(r.last_output_transition(&n), Some(Time::from_int(3)));
/// # Ok::<(), tbf_logic::NetlistError>(())
/// ```
pub fn simulate(netlist: &Netlist, delays: &[Time], inputs: &[Waveform]) -> SimResult {
    assert_eq!(delays.len(), netlist.len(), "one delay per node required");
    assert_eq!(
        inputs.len(),
        netlist.inputs().len(),
        "one waveform per primary input required"
    );

    // Settle the circuit at t = −∞ under the initial input values.
    let initial_inputs: Vec<bool> = inputs.iter().map(Waveform::initial).collect();
    let initial = netlist.evaluate(&initial_inputs);
    let mut current: Vec<bool> = initial.clone();
    let mut waveforms: Vec<Waveform> = initial.iter().map(|&v| Waveform::constant(v)).collect();

    // Local index-based topology (avoids NodeId plumbing in the hot loop).
    let fanouts: Vec<Vec<usize>> = netlist
        .nodes()
        .map(|(id, _)| netlist.fanouts(id).iter().map(|f| f.index()).collect())
        .collect();
    let fanins: Vec<Vec<usize>> = netlist
        .nodes()
        .map(|(_, n)| n.fanins().iter().map(|f| f.index()).collect())
        .collect();
    let kinds: Vec<_> = netlist.nodes().map(|(_, n)| n.kind()).collect();

    // Event = (time, sequence, node, value). The sequence number makes the
    // heap order deterministic and FIFO among simultaneous events, so a
    // later-scheduled re-evaluation of the same node wins.
    let mut heap: BinaryHeap<Reverse<(Time, u64, usize, bool)>> = BinaryHeap::new();
    let mut seq = 0u64;
    for (pos, &input_id) in netlist.inputs().iter().enumerate() {
        for &(t, v) in inputs[pos].transitions() {
            heap.push(Reverse((t, seq, input_id.index(), v)));
            seq += 1;
        }
    }

    let mut scratch = Vec::new();
    while let Some(Reverse((t, _, n, v))) = heap.pop() {
        if current[n] == v {
            // Transport semantics: an event that does not change the value
            // is inert (e.g. a re-evaluation after a same-instant glitch).
            continue;
        }
        current[n] = v;
        waveforms[n].record(t, v);
        for &fanout in &fanouts[n] {
            scratch.clear();
            scratch.extend(fanins[fanout].iter().map(|&f| current[f]));
            let out = kinds[fanout].eval(&scratch);
            heap.push(Reverse((t + delays[fanout], seq, fanout, out)));
            seq += 1;
        }
    }

    SimResult { waveforms }
}

/// Every node at its maximum delay bound.
pub fn max_delays(netlist: &Netlist) -> Vec<Time> {
    netlist.nodes().map(|(_, n)| n.delay().max).collect()
}

/// Every node at its minimum delay bound.
pub fn min_delays(netlist: &Netlist) -> Vec<Time> {
    netlist.nodes().map(|(_, n)| n.delay().min).collect()
}

/// A delay assignment sampled uniformly (on the fixed-point grid) within
/// each node's bounds, driven by the caller's random source.
pub fn sample_delays(netlist: &Netlist, mut rand_u64: impl FnMut() -> u64) -> Vec<Time> {
    netlist
        .nodes()
        .map(|(_, n)| {
            let lo = n.delay().min.scaled();
            let hi = n.delay().max.scaled();
            let span = (hi - lo) as u64 + 1;
            Time::from_scaled(lo + (rand_u64() % span) as i64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stimulus::Stimulus;
    use tbf_logic::{DelayBounds, GateKind};

    fn t(x: i64) -> Time {
        Time::from_int(x)
    }

    fn d(x: i64) -> DelayBounds {
        DelayBounds::fixed(t(x))
    }

    fn chain3() -> Netlist {
        let mut b = Netlist::builder();
        let a = b.input("a");
        let g1 = b.gate(GateKind::Not, "g1", vec![a], d(1)).unwrap();
        let g2 = b.gate(GateKind::Not, "g2", vec![g1], d(2)).unwrap();
        let g3 = b.gate(GateKind::Buf, "g3", vec![g2], d(3)).unwrap();
        b.output("f", g3);
        b.finish().unwrap()
    }

    #[test]
    fn transitions_propagate_with_transport_delay() {
        let n = chain3();
        let stim = Stimulus::vector_pair(&[false], &[true]);
        let r = simulate(&n, &max_delays(&n), &stim.waveforms(&n));
        assert_eq!(r.last_output_transition(&n), Some(t(6)));
        assert_eq!(r.final_outputs(&n), vec![true]);
        let g1 = n.find("g1").unwrap();
        assert_eq!(r.waveform(g1).transitions(), &[(t(1), false)]);
    }

    #[test]
    fn settled_circuit_stays_settled() {
        let n = chain3();
        let stim = Stimulus::vector_pair(&[true], &[true]);
        let r = simulate(&n, &max_delays(&n), &stim.waveforms(&n));
        assert_eq!(r.last_output_transition(&n), None);
    }

    #[test]
    fn reconvergent_glitch_appears_with_unequal_delays() {
        // a → buf(1), a → inv(2), AND: rising a gives a [1,2) glitch at
        // the AND (after its own delay).
        let mut b = Netlist::builder();
        let a = b.input("a");
        let buf = b.gate(GateKind::Buf, "buf", vec![a], d(1)).unwrap();
        let inv = b.gate(GateKind::Not, "inv", vec![a], d(2)).unwrap();
        let g = b.gate(GateKind::And, "g", vec![buf, inv], d(1)).unwrap();
        b.output("f", g);
        let n = b.finish().unwrap();
        let stim = Stimulus::vector_pair(&[false], &[true]);
        let r = simulate(&n, &max_delays(&n), &stim.waveforms(&n));
        let out = n.find("g").unwrap();
        // Glitch: rises at 1+1=2, falls at 2+1=3.
        assert_eq!(
            r.waveform(out).transitions(),
            &[(t(2), true), (t(3), false)]
        );
        assert_eq!(r.last_output_transition(&n), Some(t(3)));
    }

    #[test]
    fn equal_delays_absorb_the_glitch() {
        // Same circuit, equal delays: simultaneous events cancel — the
        // Figure 6 fixed-delay phenomenon.
        let mut b = Netlist::builder();
        let a = b.input("a");
        let buf = b.gate(GateKind::Buf, "buf", vec![a], d(1)).unwrap();
        let inv = b.gate(GateKind::Not, "inv", vec![a], d(1)).unwrap();
        let g = b.gate(GateKind::And, "g", vec![buf, inv], d(1)).unwrap();
        b.output("f", g);
        let n = b.finish().unwrap();
        let stim = Stimulus::vector_pair(&[false], &[true]);
        let r = simulate(&n, &max_delays(&n), &stim.waveforms(&n));
        assert_eq!(r.last_output_transition(&n), None);
    }

    #[test]
    fn pulse_train_input() {
        let n = chain3();
        let mut w = Waveform::constant(false);
        w.add_pulse(t(-10), t(-8), true);
        w.add_pulse(t(-2), Time::ZERO, true);
        let r = simulate(&n, &max_delays(&n), &[w]);
        // Buffered chain passes both pulses; last transition = 0 + 6.
        assert_eq!(r.last_output_transition(&n), Some(t(6)));
        let out = n.find("g3").unwrap();
        assert_eq!(r.waveform(out).transitions().len(), 4);
    }

    #[test]
    fn delay_helpers() {
        let mut b = Netlist::builder();
        let a = b.input("a");
        let g = b
            .gate(GateKind::Buf, "g", vec![a], DelayBounds::new(t(2), t(5)))
            .unwrap();
        b.output("f", g);
        let n = b.finish().unwrap();
        assert_eq!(max_delays(&n)[g.index()], t(5));
        assert_eq!(min_delays(&n)[g.index()], t(2));
        let mut x = 0u64;
        let sampled = sample_delays(&n, || {
            x += 1;
            x * 7919
        });
        assert!(sampled[g.index()] >= t(2) && sampled[g.index()] <= t(5));
        assert_eq!(sampled[a.index()], Time::ZERO);
    }

    #[test]
    fn simultaneous_fanin_changes_are_consistent() {
        // XOR with both inputs flipping at t = 0 through equal buffers:
        // output must not change (even parity preserved).
        let mut b = Netlist::builder();
        let x = b.input("x");
        let y = b.input("y");
        let bx = b.gate(GateKind::Buf, "bx", vec![x], d(1)).unwrap();
        let by = b.gate(GateKind::Buf, "by", vec![y], d(1)).unwrap();
        let g = b.gate(GateKind::Xor, "g", vec![bx, by], d(1)).unwrap();
        b.output("f", g);
        let n = b.finish().unwrap();
        let stim = Stimulus::vector_pair(&[false, true], &[true, false]);
        let r = simulate(&n, &max_delays(&n), &stim.waveforms(&n));
        assert_eq!(r.last_output_transition(&n), None);
    }

    #[test]
    #[should_panic(expected = "one delay per node")]
    fn wrong_delay_arity_panics() {
        let n = chain3();
        let stim = Stimulus::vector_pair(&[false], &[true]);
        let _ = simulate(&n, &[Time::ZERO], &stim.waveforms(&n));
    }
}
