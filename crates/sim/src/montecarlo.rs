//! Monte-Carlo delay distributions.
//!
//! The paper's Definition 1 allows gate delays specified by *distribution
//! functions* but analyzes only the interval model ("In this paper we
//! only discuss the first type"). This module supplies the sampled
//! counterpart: draw delay assignments and input pairs, simulate, and
//! summarize the last-transition distribution — the statistical view the
//! interval model's worst case bounds from above.

use tbf_logic::{Netlist, Time};

use crate::engine::{sample_delays, simulate};
use crate::stimulus::Stimulus;

/// A sampled distribution of last-output-transition times.
///
/// Trials where no output moves are recorded separately in
/// [`quiet_trials`](Self::quiet_trials) (a "delay" of zero would skew
/// the statistics).
#[derive(Clone, Debug)]
pub struct DelayDistribution {
    samples: Vec<Time>,
    quiet_trials: usize,
}

impl DelayDistribution {
    /// Samples `trials` random (vector-pair, delay-assignment) scenarios.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0`.
    pub fn sample(netlist: &Netlist, trials: usize, mut rand_u64: impl FnMut() -> u64) -> Self {
        assert!(trials > 0, "need at least one trial");
        let n_in = netlist.inputs().len();
        let mut samples = Vec::with_capacity(trials);
        let mut quiet = 0usize;
        for _ in 0..trials {
            let before: Vec<bool> = (0..n_in).map(|_| rand_u64() & 1 == 1).collect();
            let after: Vec<bool> = (0..n_in).map(|_| rand_u64() & 1 == 1).collect();
            let delays = sample_delays(netlist, &mut rand_u64);
            let stim = Stimulus::vector_pair(&before, &after);
            let result = simulate(netlist, &delays, &stim.waveforms(netlist));
            match result.last_output_transition(netlist) {
                Some(t) => samples.push(t),
                None => quiet += 1,
            }
        }
        samples.sort_unstable();
        DelayDistribution {
            samples,
            quiet_trials: quiet,
        }
    }

    /// Number of trials in which some output transitioned.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no trial produced a transition.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Trials in which no output transitioned at all.
    pub fn quiet_trials(&self) -> usize {
        self.quiet_trials
    }

    /// The largest observed last-transition time.
    pub fn max(&self) -> Option<Time> {
        self.samples.last().copied()
    }

    /// The `p`-quantile (`0 ≤ p ≤ 1`) of the observed times.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]` or no transitions were observed.
    pub fn quantile(&self, p: f64) -> Time {
        assert!((0.0..=1.0).contains(&p), "quantile out of range");
        assert!(!self.samples.is_empty(), "no transitions observed");
        let idx = ((self.samples.len() - 1) as f64 * p).round() as usize;
        self.samples[idx]
    }

    /// Arithmetic mean of the observed times (units).
    ///
    /// # Panics
    ///
    /// Panics if no transitions were observed.
    pub fn mean(&self) -> f64 {
        assert!(!self.samples.is_empty(), "no transitions observed");
        self.samples.iter().map(|t| t.to_units()).sum::<f64>() / self.samples.len() as f64
    }

    /// Histogram over `bins` equal-width buckets spanning `[0, max]`;
    /// returns `(bucket upper edge, count)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or no transitions were observed.
    pub fn histogram(&self, bins: usize) -> Vec<(Time, usize)> {
        assert!(bins > 0, "need at least one bin");
        let max = self.max().expect("no transitions observed");
        let width = (max.scaled() / bins as i64).max(1);
        let mut counts = vec![0usize; bins];
        for &s in &self.samples {
            let idx = ((s.scaled() - 1).max(0) / width) as usize;
            counts[idx.min(bins - 1)] += 1;
        }
        counts
            .into_iter()
            .enumerate()
            .map(|(i, c)| (Time::from_scaled(width * (i as i64 + 1)), c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbf_logic::generators::adders::paper_bypass_adder;
    use tbf_logic::{DelayBounds, GateKind, Time};

    fn rng(seed: u64) -> impl FnMut() -> u64 {
        let mut s = seed | 1;
        move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        }
    }

    #[test]
    fn distribution_on_the_bypass_adder() {
        let n = paper_bypass_adder();
        let d = DelayDistribution::sample(&n, 400, rng(42));
        assert!(d.len() + d.quiet_trials() == 400);
        assert!(!d.is_empty());
        // The sampled worst case never exceeds the exact bound 24 and the
        // quantiles are ordered.
        assert!(d.max().unwrap() <= Time::from_int(24));
        assert!(d.quantile(0.5) <= d.quantile(0.95));
        assert!(d.quantile(0.95) <= d.max().unwrap());
        assert!(d.mean() > 0.0);
    }

    #[test]
    fn histogram_counts_everything() {
        let n = paper_bypass_adder();
        let d = DelayDistribution::sample(&n, 200, rng(7));
        let hist = d.histogram(8);
        assert_eq!(hist.len(), 8);
        let total: usize = hist.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, d.len());
        // Edges ascend.
        assert!(hist.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn fixed_chain_is_deterministic() {
        let mut b = tbf_logic::Netlist::builder();
        let x = b.input("x");
        let g = b
            .gate(
                GateKind::Not,
                "g",
                vec![x],
                DelayBounds::fixed(Time::from_int(5)),
            )
            .unwrap();
        b.output("f", g);
        let n = b.finish().unwrap();
        let d = DelayDistribution::sample(&n, 100, rng(3));
        // Trials where x changed transition at exactly 5.
        assert_eq!(d.max(), Some(Time::from_int(5)));
        assert_eq!(d.quantile(0.0), Time::from_int(5));
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_panics() {
        let n = paper_bypass_adder();
        let _ = DelayDistribution::sample(&n, 0, rng(1));
    }
}
