//! Waveform algebra: pointwise Boolean combinators and time shifting.
//!
//! These mirror the Timed Boolean Function operations of the paper's §4
//! on concrete signals — `(f · g)(t) = f(t) ∧ g(t)`,
//! `delayed(f, τ)(t) = f(t − τ)` — so a TBF can be evaluated two
//! independent ways (symbolically via `tbf-core`'s `TbfExpr`, concretely
//! here) and cross-checked against event-driven simulation.

use tbf_logic::Time;

use crate::waveform::Waveform;

impl Waveform {
    /// Pointwise combination of two waveforms.
    pub fn combine(&self, other: &Waveform, op: impl Fn(bool, bool) -> bool) -> Waveform {
        let mut out = Waveform::constant(op(self.initial(), other.initial()));
        let mut ia = 0usize;
        let mut ib = 0usize;
        let a = self.transitions();
        let b = other.transitions();
        while ia < a.len() || ib < b.len() {
            let ta = a.get(ia).map(|&(t, _)| t);
            let tb = b.get(ib).map(|&(t, _)| t);
            let t = match (ta, tb) {
                (Some(x), Some(y)) => x.min(y),
                (Some(x), None) => x,
                (None, Some(y)) => y,
                (None, None) => unreachable!("loop condition"),
            };
            while ia < a.len() && a[ia].0 == t {
                ia += 1;
            }
            while ib < b.len() && b[ib].0 == t {
                ib += 1;
            }
            out.record(t, op(self.value_at(t), other.value_at(t)));
        }
        out
    }

    /// Pointwise AND.
    pub fn and(&self, other: &Waveform) -> Waveform {
        self.combine(other, |a, b| a && b)
    }

    /// Pointwise OR.
    pub fn or(&self, other: &Waveform) -> Waveform {
        self.combine(other, |a, b| a || b)
    }

    /// Pointwise XOR.
    pub fn xor(&self, other: &Waveform) -> Waveform {
        self.combine(other, |a, b| a ^ b)
    }

    /// Pointwise negation.
    pub fn negate(&self) -> Waveform {
        let mut out = Waveform::constant(!self.initial());
        for &(t, v) in self.transitions() {
            out.record(t, !v);
        }
        out
    }

    /// The waveform shifted later by `delay`: `out(t) = self(t − delay)`
    /// (a pure transport-delay gate).
    pub fn delayed(&self, delay: Time) -> Waveform {
        let mut out = Waveform::constant(self.initial());
        for &(t, v) in self.transitions() {
            out.record(t + delay, v);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: i64) -> Time {
        Time::from_int(x)
    }

    fn pulse(start: i64, end: i64) -> Waveform {
        let mut w = Waveform::constant(false);
        w.add_pulse(t(start), t(end), true);
        w
    }

    #[test]
    fn and_of_overlapping_pulses() {
        let a = pulse(0, 10);
        let b = pulse(5, 15);
        let c = a.and(&b);
        assert_eq!(c.transitions(), &[(t(5), true), (t(10), false)]);
    }

    #[test]
    fn or_of_disjoint_pulses() {
        let a = pulse(0, 2);
        let b = pulse(5, 7);
        let c = a.or(&b);
        assert_eq!(c.transitions().len(), 4);
        assert!(c.value_at(t(1)));
        assert!(!c.value_at(t(3)));
        assert!(c.value_at(t(6)));
    }

    #[test]
    fn xor_cancels_identical_signals() {
        let a = pulse(2, 9);
        assert!(a.xor(&a).is_constant());
        let b = a.negate();
        let x = a.xor(&b);
        assert!(x.is_constant());
        assert!(x.initial());
    }

    #[test]
    fn negate_flips_everything() {
        let a = pulse(1, 4);
        let n = a.negate();
        assert!(n.initial());
        assert!(!n.value_at(t(2)));
        assert!(n.value_at(t(5)));
        assert_eq!(n.negate(), a);
    }

    #[test]
    fn delay_shifts_transitions() {
        let a = pulse(0, 3);
        let d = a.delayed(t(4));
        assert_eq!(d.transitions(), &[(t(4), true), (t(7), false)]);
        assert_eq!(a.delayed(Time::ZERO), a);
    }

    #[test]
    fn paper_example2_via_algebra() {
        // f(a,b)(t) = a(t−1) ⊕ b(t+1): a rising step at 0, b rising at 3
        // → XOR pulse on [1, 2).
        let a = Waveform::step(false, Time::ZERO, true);
        let b = Waveform::step(false, t(3), true);
        let f = a.delayed(t(1)).xor(&b.delayed(-t(1)));
        assert_eq!(f.transitions(), &[(t(1), true), (t(2), false)]);
    }

    #[test]
    fn rise_fall_buffer_as_algebra() {
        // §4.1: y(t) = x(t−τr)·x(t−τf) with τr = 3 > τf = 2 on a pulse
        // [0, 5): output high on [3, 7).
        let x = pulse(0, 5);
        let y = x.delayed(t(3)).and(&x.delayed(t(2)));
        assert_eq!(y.transitions(), &[(t(3), true), (t(7), false)]);
        // τr = 1 < τf = 2: OR widens instead.
        let y2 = x.delayed(t(1)).or(&x.delayed(t(2)));
        assert_eq!(y2.transitions(), &[(t(1), true), (t(7), false)]);
    }
}
