//! Input stimulus construction for the paper's input families.

use tbf_logic::{Netlist, Time};

use crate::waveform::Waveform;

/// Builds per-input waveforms for the input families of Definition 1:
/// vector pairs (`2`) and vector sequences applied at `t ≤ 0` (`ω⁻`).
///
/// # Example
///
/// ```
/// use tbf_sim::Stimulus;
/// use tbf_logic::Time;
///
/// let stim = Stimulus::vector_sequence(
///     &[false, false],
///     vec![
///         (Time::from_int(-5), vec![true, false]),
///         (Time::ZERO, vec![true, true]),
///     ],
/// );
/// assert_eq!(stim.arity(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct Stimulus {
    waveforms: Vec<Waveform>,
}

impl Stimulus {
    /// The 2-vector family: `before` applied since `t = −∞`, `after`
    /// applied simultaneously at `t = 0`.
    ///
    /// # Panics
    ///
    /// Panics if the vectors differ in length.
    pub fn vector_pair(before: &[bool], after: &[bool]) -> Stimulus {
        assert_eq!(before.len(), after.len(), "vector arity mismatch");
        Stimulus {
            waveforms: before
                .iter()
                .zip(after)
                .map(|(&b, &a)| Waveform::step(b, Time::ZERO, a))
                .collect(),
        }
    }

    /// The ω⁻ family: an initial vector held since `t = −∞`, then a
    /// sequence of vectors at the given (ascending, ≤ 0) times; the last
    /// is conventionally at `t = 0`.
    ///
    /// # Panics
    ///
    /// Panics if arities mismatch, times descend, or a time is positive.
    pub fn vector_sequence(initial: &[bool], sequence: Vec<(Time, Vec<bool>)>) -> Stimulus {
        let mut waveforms: Vec<Waveform> = initial.iter().map(|&v| Waveform::constant(v)).collect();
        let mut prev = Time::MIN;
        for (t, vec) in sequence {
            assert!(t >= prev, "sequence times must ascend");
            assert!(t <= Time::ZERO, "ω⁻ vectors are applied at t ≤ 0");
            assert_eq!(vec.len(), waveforms.len(), "vector arity mismatch");
            prev = t;
            for (w, &v) in waveforms.iter_mut().zip(&vec) {
                w.record(t, v);
            }
        }
        Stimulus { waveforms }
    }

    /// A stimulus from explicit per-input waveforms (pulse trains etc.).
    pub fn from_waveforms(waveforms: Vec<Waveform>) -> Stimulus {
        Stimulus { waveforms }
    }

    /// Number of inputs driven.
    pub fn arity(&self) -> usize {
        self.waveforms.len()
    }

    /// The per-input waveforms, checked against a netlist's input count.
    ///
    /// # Panics
    ///
    /// Panics if the stimulus arity differs from `netlist.inputs().len()`.
    pub fn waveforms(&self, netlist: &Netlist) -> Vec<Waveform> {
        assert_eq!(
            self.arity(),
            netlist.inputs().len(),
            "stimulus arity {} != netlist inputs {}",
            self.arity(),
            netlist.inputs().len()
        );
        self.waveforms.clone()
    }

    /// The per-input waveforms without a netlist check.
    pub fn into_waveforms(self) -> Vec<Waveform> {
        self.waveforms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_pair_steps_at_zero() {
        let s = Stimulus::vector_pair(&[false, true], &[true, true]);
        let ws = s.into_waveforms();
        assert_eq!(ws[0], Waveform::step(false, Time::ZERO, true));
        assert!(ws[1].is_constant());
    }

    #[test]
    fn vector_sequence_builds_trains() {
        let s = Stimulus::vector_sequence(
            &[false],
            vec![
                (Time::from_int(-4), vec![true]),
                (Time::from_int(-2), vec![false]),
                (Time::ZERO, vec![true]),
            ],
        );
        let w = &s.into_waveforms()[0];
        assert_eq!(w.transitions().len(), 3);
        assert!(w.value_at(Time::from_int(-3)));
        assert!(!w.value_at(Time::from_int(-1)));
        assert!(w.value_at(Time::ZERO));
    }

    #[test]
    #[should_panic(expected = "ascend")]
    fn descending_times_panic() {
        let _ = Stimulus::vector_sequence(
            &[false],
            vec![(Time::ZERO, vec![true]), (Time::from_int(-1), vec![false])],
        );
    }

    #[test]
    #[should_panic(expected = "t ≤ 0")]
    fn positive_times_panic() {
        let _ = Stimulus::vector_sequence(&[false], vec![(Time::from_int(1), vec![true])]);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let _ = Stimulus::vector_pair(&[false], &[true, true]);
    }
}
