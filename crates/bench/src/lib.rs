//! # tbf-bench — Benchmark harness for the TBF delay suite
//!
//! Regenerates every table and figure of the paper's evaluation:
//!
//! * `cargo run -p tbf-bench --release --bin table1` — the §12 table
//!   (per-benchmark topological vs exact delays and runtimes),
//! * `cargo run -p tbf-bench --release --bin examples_table` — the worked
//!   examples (Figures 1–9) with paper-vs-measured values,
//! * `cargo run -p tbf-bench --release --bin lower_bounds` — the §10 /
//!   Theorem 5 precision sweep and the Theorem 3 invariance check,
//! * `cargo bench -p tbf-bench` — dependency-free microbenches (see
//!   [`harness`]) for the engine stages (breakpoint search, TBF
//!   construction, BDD ops, LPs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;

use std::time::Instant;

use tbf_core::{DelayError, DelayOptions, DelayReport};
use tbf_logic::Netlist;

/// One row of the §12-style table.
#[derive(Clone, Debug)]
pub struct TableRow {
    /// Benchmark name.
    pub name: String,
    /// Gate count (inputs excluded).
    pub gates: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Topological (STA) delay.
    pub topological: tbf_logic::Time,
    /// Exact 2-vector delay, or the error that capped it.
    pub two_vector: Result<tbf_logic::Time, DelayError>,
    /// Exact sequences (floating) delay, or the error that capped it.
    pub sequences: Result<tbf_logic::Time, DelayError>,
    /// Wall-clock milliseconds for the 2-vector computation.
    pub two_vector_ms: f64,
    /// Wall-clock milliseconds for the sequences computation.
    pub sequences_ms: f64,
}

/// Runs both exact engines on a circuit with timing.
pub fn run_row(name: &str, netlist: &Netlist, options: &DelayOptions) -> TableRow {
    let start = Instant::now();
    let two_vector = tbf_core::two_vector_delay(netlist, options).map(|r: DelayReport| r.delay);
    let two_vector_ms = start.elapsed().as_secs_f64() * 1e3;
    let start = Instant::now();
    let sequences = tbf_core::sequences_delay(netlist, options).map(|r| r.delay);
    let sequences_ms = start.elapsed().as_secs_f64() * 1e3;
    TableRow {
        name: name.to_owned(),
        gates: netlist.gate_count(),
        outputs: netlist.outputs().len(),
        topological: netlist.topological_delay(),
        two_vector,
        sequences,
        two_vector_ms,
        sequences_ms,
    }
}

/// Formats a delay-or-error cell.
pub fn cell(value: &Result<tbf_logic::Time, DelayError>) -> String {
    match value {
        Ok(t) => t.to_string(),
        Err(e) => match e.bounds() {
            Some((lo, hi)) => format!("[{lo},{hi}]*"),
            None => "err".into(),
        },
    }
}

/// Prints the table header used by the binaries.
pub fn print_header() {
    println!(
        "{:<12} {:>6} {:>4} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "circuit", "gates", "PO", "topological", "D(2)", "ms", "D(ω⁻)", "ms"
    );
    println!("{}", "-".repeat(82));
}

/// Prints one table row.
pub fn print_row(r: &TableRow) {
    println!(
        "{:<12} {:>6} {:>4} {:>12} {:>10} {:>10.1} {:>10} {:>10.1}",
        r.name,
        r.gates,
        r.outputs,
        r.topological.to_string(),
        cell(&r.two_vector),
        r.two_vector_ms,
        cell(&r.sequences),
        r.sequences_ms,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbf_logic::parsers::bench::c17;
    use tbf_logic::parsers::mcnc_like_delays;

    #[test]
    fn run_row_times_both_engines() {
        let n = c17(mcnc_like_delays);
        let row = run_row("c17", &n, &DelayOptions::default());
        assert_eq!(row.gates, 6);
        assert!(row.two_vector.is_ok());
        assert!(row.sequences.is_ok());
        assert!(row.two_vector_ms >= 0.0);
        assert_eq!(cell(&row.two_vector), row.two_vector.unwrap().to_string());
    }

    #[test]
    fn cell_formats_errors_with_bounds() {
        let e = DelayError::TooManyPaths {
            limit: 1,
            at_breakpoint: tbf_logic::Time::from_int(5),
            bounds: (tbf_logic::Time::ZERO, tbf_logic::Time::from_int(5)),
        };
        assert_eq!(cell(&Err(e)), "[0,5]*");
    }
}
