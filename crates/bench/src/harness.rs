//! A minimal, dependency-free micro-benchmark harness.
//!
//! The workspace builds hermetically (no Criterion), so the `[[bench]]`
//! targets are plain `main()` binaries driven by this module: warm-up,
//! automatic iteration-count calibration against a fixed wall-clock
//! budget, and a median-of-samples report.  Run them with
//! `cargo bench` (each target sets `harness = false`).

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Wall-clock budget per sample batch.
const SAMPLE_BUDGET: Duration = Duration::from_millis(60);
/// Number of sampled batches per benchmark (the median is reported).
const SAMPLES: usize = 5;
/// Cap on iterations per batch, so ultra-cheap bodies still terminate
/// calibration quickly.
const MAX_ITERS: u128 = 10_000;

/// Times `f`, printing `name` with the median per-iteration latency.
///
/// The closure's result is passed through [`black_box`] so the optimizer
/// cannot delete the measured work.
pub fn bench<R>(name: &str, mut f: impl FnMut() -> R) {
    // Warm-up + calibration: one timed call sizes the batches.
    let t0 = Instant::now();
    black_box(f());
    let once = t0.elapsed().max(Duration::from_nanos(1));
    let iters = (SAMPLE_BUDGET.as_nanos() / once.as_nanos()).clamp(1, MAX_ITERS) as usize;

    let mut per_iter_ns: Vec<u128> = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        per_iter_ns.push(start.elapsed().as_nanos() / iters as u128);
    }
    per_iter_ns.sort_unstable();
    let median = per_iter_ns[per_iter_ns.len() / 2];
    println!(
        "{name:<44} {:>14}  ({SAMPLES} samples x {iters} iters)",
        format_ns(median)
    );
}

/// Pretty-prints a nanosecond latency with an adaptive unit.
fn format_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s/iter", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms/iter", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us/iter", ns as f64 / 1e3)
    } else {
        format!("{ns} ns/iter")
    }
}

/// Prints a section header for a group of related benchmarks.
pub fn section(title: &str) {
    println!("\n== {title} ==");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_formats() {
        bench("harness/self_test", || 21 * 2);
        assert_eq!(format_ns(12), "12 ns/iter");
        assert_eq!(format_ns(1_500), "1.500 us/iter");
        assert_eq!(format_ns(2_500_000), "2.500 ms/iter");
        assert_eq!(format_ns(3_000_000_000), "3.000 s/iter");
    }
}
