//! Regenerates the paper's §12 experimental table on the substitute
//! benchmark suite (see `DESIGN.md` for the ISCAS substitution): for each
//! circuit, the topological delay, the exact 2-vector delay, the exact
//! delay by sequences of vectors, and wall-clock runtimes.
//!
//! The paper's claim shape to verify: exact ≤ topological everywhere,
//! with large gaps on the bypass/select adders (false paths) and zero gap
//! on trees; runtimes dominated by circuits with many near-critical
//! paths, not by raw gate count.
//!
//! ```sh
//! cargo run -p tbf-bench --release --bin table1
//! ```

use tbf_bench::{print_header, print_row, run_row};
use tbf_core::DelayOptions;
use tbf_logic::generators::benchmark_suite;

fn main() {
    // Release-sized caps: the table machine affords a bigger BDD budget
    // than the test-suite default.
    let options = DelayOptions {
        max_bdd_nodes: 16_000_000,
        // Per-engine wall-clock budget: rows that would take
        // DECstation-hours (the paper's own situation) report sound
        // bounds instead of stalling the table.
        time_budget: Some(std::time::Duration::from_secs(120)),
        ..DelayOptions::default()
    };
    println!("§12 table — exact delays, dmin = 0.9·dmax (MCNC-like library)\n");
    print_header();
    let mut total_ms = 0.0;
    for (name, netlist) in benchmark_suite() {
        let row = run_row(&name, &netlist, &options);
        total_ms += row.two_vector_ms + row.sequences_ms;
        print_row(&row);
    }
    println!("{}", "-".repeat(82));
    println!("total {total_ms:.1} ms   (* = resource cap hit; sound bounds reported)");
}
