//! `tbf` — command-line exact delay analysis for `.bench` / BLIF /
//! AIGER / structural-Verilog netlists.
//!
//! ```text
//! Usage: tbf [OPTIONS] <NETLIST>
//!        tbf serve [SERVE OPTIONS]
//!
//!   <NETLIST>              path to an ISCAS-85 .bench, BLIF, AIGER
//!                          (ASCII or binary) or structural-Verilog file
//!
//! Options:
//!   --model <M>            two-vector | sequences | floating | anytime | all
//!                                                                   [default: all]
//!   --format <F>           bench | blif | aiger | verilog: input format.
//!                          Defaults to the file extension, falling back to
//!                          content sniffing (see FORMATS.md)
//!   --delays <D>           unit | mcnc                              [default: mcnc]
//!   --dmin-ratio <F>       overwrite every dmin with F·dmax (0 ≤ F ≤ 1)
//!   --max-paths <N>        delay-dependent path cap
//!   --max-bdd <N>          BDD node cap
//!   --time-budget <MS>     wall-clock budget in milliseconds; exceeding it
//!                          degrades results to sound bounds (anytime mode)
//!   --threads <N>          worker threads for anytime cone analysis;
//!                          0 = one per core                         [default: 1]
//!   --reorder <R>          off | manual | pressure: dynamic BDD variable
//!                          reordering (sifting). Representation-only —
//!                          reported delays and witnesses are identical for
//!                          every setting                       [default: off]
//!   --replay               simulate the 2-vector witness and report the
//!                          observed last transition
//!   --per-output           print the per-output breakdown
//!   --tbf-cache <C>        auto | on | off: cross-breakpoint timed-node
//!                          caching. `auto` bypasses the cache for tiny
//!                          cones; results are identical in every mode
//!                                                             [default: auto]
//!   --no-complement-edges  build plain-node BDDs instead of the default
//!                          complement-edged managers (differential
//!                          testing; results are identical either way)
//!   --gc <G>               auto | on | off: mark-and-sweep arena garbage
//!                          collection under pressure. Memory-only knob —
//!                          results are identical in every mode
//!                                                             [default: auto]
//!   --emit-metrics <PATH>  write the machine-readable run artifact (JSON)
//!                          to PATH; `-` streams it to stdout and implies
//!                          --quiet plus suppression of the human report
//!   --quiet                suppress stderr diagnostics
//! ```
//!
//! The `anytime` model runs the graceful-degradation driver
//! ([`tbf_core::analyze`]): it never fails — outputs that blow a cap,
//! the deadline, or even panic the engine are reported with sound
//! `[lower, upper]` bounds and the cause of the degradation.
//!
//! The run artifact is a [`tbf_obs::RunArtifact`]: a schema-versioned
//! JSON document whose every section except the trailing `timing` one is
//! byte-identical across `--threads` and `--reorder off|pressure`
//! settings (see `DESIGN.md` §13).
//!
//! `tbf serve` starts the long-running analysis service (`tbf-serve`):
//! a line-delimited JSON request loop on stdin/stdout (or a `--listen`
//! unix socket) with warm caches, admission control, per-request fault
//! isolation, and graceful shutdown. See `DESIGN.md` §15 and the README
//! quickstart; `tbf serve --help` lists the knobs.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};

use tbf_core::{
    analyze, floating_delay, sequences_delay, topological_delay, two_vector_delay, AnalysisPolicy,
    CircuitReport, DelayOptions, DelayReport, GcMode, OutputStatus, ReorderPolicy, TbfCacheMode,
};
use tbf_logic::parsers::{mcnc_like_delays, unit_delays};
use tbf_logic::{DelayBounds, Format, Netlist};
use tbf_obs::json::Value;
use tbf_obs::{diag, Phase, RunArtifact};
use tbf_sim::{simulate, Stimulus};

/// Whether the human-readable report goes to stdout. Cleared when
/// `--emit-metrics -` claims stdout for the JSON artifact.
static HUMAN: AtomicBool = AtomicBool::new(true);

/// `println!` for the human report, suppressed when stdout carries the
/// machine-readable artifact (`--emit-metrics -`).
macro_rules! say {
    ($($t:tt)*) => {
        if HUMAN.load(Ordering::Relaxed) {
            println!($($t)*);
        }
    };
}

struct Args {
    netlist: String,
    format: Option<Format>,
    model: String,
    delays: String,
    dmin_ratio: Option<f64>,
    max_paths: Option<usize>,
    max_bdd: Option<usize>,
    time_budget_ms: Option<u64>,
    threads: usize,
    reorder: ReorderPolicy,
    replay: bool,
    per_output: bool,
    tbf_cache: TbfCacheMode,
    complement_edges: bool,
    gc: GcMode,
    emit_metrics: Option<String>,
    quiet: bool,
}

/// The `--reorder pressure` trigger: sift once the manager holds this
/// many nodes, then re-arm at twice the post-sift count.
const PRESSURE_TRIGGER_NODES: usize = 50_000;

/// The `--reorder pressure` growth tolerance (percent of the starting
/// live size a sift may transiently cost while exploring).
const PRESSURE_MAX_GROWTH: usize = 120;

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        netlist: String::new(),
        format: None,
        model: "all".into(),
        delays: "mcnc".into(),
        dmin_ratio: None,
        max_paths: None,
        max_bdd: None,
        time_budget_ms: None,
        threads: 1,
        reorder: ReorderPolicy::None,
        replay: false,
        per_output: false,
        tbf_cache: TbfCacheMode::Auto,
        complement_edges: true,
        gc: GcMode::Auto,
        emit_metrics: None,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("missing value for {flag}"));
        match a.as_str() {
            "--model" => args.model = value("--model")?,
            "--format" => {
                let v = value("--format")?;
                args.format = Some(Format::from_name(&v).ok_or_else(|| {
                    format!("--format must be bench, blif, aiger or verilog, got `{v}`")
                })?);
            }
            "--delays" => args.delays = value("--delays")?,
            "--dmin-ratio" => {
                let f: f64 = value("--dmin-ratio")?
                    .parse()
                    .map_err(|e| format!("--dmin-ratio: {e}"))?;
                if !(0.0..=1.0).contains(&f) {
                    return Err(format!("--dmin-ratio must be within [0, 1], got {f}"));
                }
                args.dmin_ratio = Some(f);
            }
            "--max-paths" => {
                args.max_paths = Some(
                    value("--max-paths")?
                        .parse()
                        .map_err(|e| format!("--max-paths: {e}"))?,
                )
            }
            "--max-bdd" => {
                args.max_bdd = Some(
                    value("--max-bdd")?
                        .parse()
                        .map_err(|e| format!("--max-bdd: {e}"))?,
                )
            }
            "--time-budget" => {
                args.time_budget_ms = Some(
                    value("--time-budget")?
                        .parse()
                        .map_err(|e| format!("--time-budget: {e}"))?,
                )
            }
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--reorder" => {
                args.reorder = match value("--reorder")?.as_str() {
                    "off" => ReorderPolicy::None,
                    "manual" => ReorderPolicy::Manual,
                    "pressure" => ReorderPolicy::OnPressure {
                        trigger_nodes: PRESSURE_TRIGGER_NODES,
                        max_growth: PRESSURE_MAX_GROWTH,
                    },
                    other => {
                        return Err(format!(
                            "--reorder must be off, manual or pressure, got `{other}`"
                        ))
                    }
                }
            }
            "--replay" => args.replay = true,
            "--tbf-cache" => {
                let v = value("--tbf-cache")?;
                args.tbf_cache = TbfCacheMode::parse(&v)
                    .ok_or_else(|| format!("--tbf-cache must be auto, on or off, got `{v}`"))?;
            }
            "--no-complement-edges" => args.complement_edges = false,
            "--gc" => {
                let v = value("--gc")?;
                args.gc = GcMode::parse(&v)
                    .ok_or_else(|| format!("--gc must be auto, on or off, got `{v}`"))?;
            }
            "--per-output" => args.per_output = true,
            "--emit-metrics" => args.emit_metrics = Some(value("--emit-metrics")?),
            "--quiet" => args.quiet = true,
            "--help" | "-h" => return Err("help".into()),
            other if other.starts_with('-') && other != "-" => {
                return Err(format!("unknown flag {other}"))
            }
            other => {
                if args.netlist.is_empty() {
                    args.netlist = other.to_owned();
                } else {
                    return Err(format!("unexpected argument {other}"));
                }
            }
        }
    }
    if args.netlist.is_empty() {
        return Err("missing netlist path".into());
    }
    Ok(args)
}

fn usage() {
    eprintln!(
        "usage: tbf [--format bench|blif|aiger|verilog] \
         [--model two-vector|sequences|floating|anytime|all] \
         [--delays unit|mcnc] [--dmin-ratio F] [--max-paths N] [--max-bdd N] \
         [--time-budget MS] [--threads N] [--reorder off|manual|pressure] \
         [--replay] [--per-output] [--tbf-cache auto|on|off] \
         [--no-complement-edges] [--gc auto|on|off] \
         [--emit-metrics PATH|-] [--quiet] \
         <netlist.bench|.blif|.aag|.aig|.v>"
    );
}

fn load(args: &Args) -> Result<Netlist, String> {
    let delay_fn = match args.delays.as_str() {
        "unit" => unit_delays as fn(_, _) -> _,
        "mcnc" => mcnc_like_delays as fn(_, _) -> _,
        other => return Err(format!("unknown delay model `{other}`")),
    };
    let netlist = match args.format {
        Some(format) => {
            let bytes =
                std::fs::read(&args.netlist).map_err(|e| format!("{}: {e}", args.netlist))?;
            tbf_logic::parse_netlist(format, &bytes, delay_fn)
                .map_err(|e| format!("{}: {e}", args.netlist))?
        }
        None => tbf_logic::load_netlist(&args.netlist, delay_fn).map_err(|e| match &e {
            // `Io` already carries the offending path in its message.
            tbf_logic::NetlistError::Io { .. } => e.to_string(),
            _ => format!("{}: {e}", args.netlist),
        })?,
    };
    Ok(match args.dmin_ratio {
        Some(f) => netlist.map_delays(|d| DelayBounds::scaled_min(d.max, f)),
        None => netlist,
    })
}

fn print_report(label: &str, report: &DelayReport, per_output: bool) {
    say!(
        "{label:<12} {:>10}   ({} breakpoints, {} resolvents, {} LPs, peak {} BDD nodes)",
        report.delay.to_string(),
        report.stats.breakpoints_visited,
        report.stats.resolvents,
        report.stats.lps_solved,
        report.stats.peak_bdd_nodes
    );
    if per_output {
        for o in &report.outputs {
            print_output_line(o);
        }
    }
}

fn print_output_line(o: &tbf_core::OutputDelay) {
    let note = match o.status {
        OutputStatus::Exact => String::new(),
        OutputStatus::Bounded {
            lower,
            upper,
            cause,
        } => {
            format!(" (within [{lower}, {upper}]: {cause})")
        }
        OutputStatus::Fallback { cause } => format!(" (topological bound: {cause})"),
    };
    say!(
        "    {:<24} {:>10}{}  (topological {})",
        o.name,
        o.delay.to_string(),
        note,
        o.topological
    );
}

/// The deterministic `results` entry of one per-output line.
fn output_value(o: &tbf_core::OutputDelay) -> Value {
    let status = match o.status {
        OutputStatus::Exact => Value::str("exact"),
        OutputStatus::Bounded {
            lower,
            upper,
            cause,
        } => Value::Obj(vec![
            ("kind".to_owned(), Value::str("bounded")),
            ("lower".to_owned(), Value::str(lower.to_string())),
            ("upper".to_owned(), Value::str(upper.to_string())),
            ("cause".to_owned(), Value::str(cause.to_string())),
        ]),
        OutputStatus::Fallback { cause } => Value::Obj(vec![
            ("kind".to_owned(), Value::str("fallback")),
            ("cause".to_owned(), Value::str(cause.to_string())),
        ]),
    };
    Value::Obj(vec![
        ("name".to_owned(), Value::str(&o.name)),
        ("delay".to_owned(), Value::str(o.delay.to_string())),
        (
            "topological".to_owned(),
            Value::str(o.topological.to_string()),
        ),
        ("status".to_owned(), status),
    ])
}

/// The deterministic `results` entry of one engine report.
fn report_value(r: &DelayReport) -> Value {
    Value::Obj(vec![
        ("delay".to_owned(), Value::str(r.delay.to_string())),
        (
            "topological".to_owned(),
            Value::str(r.topological.to_string()),
        ),
        (
            "breakpoints_visited".to_owned(),
            Value::u64(r.stats.breakpoints_visited as u64),
        ),
        (
            "resolvents".to_owned(),
            Value::u64(r.stats.resolvents as u64),
        ),
        (
            "lps_solved".to_owned(),
            Value::u64(r.stats.lps_solved as u64),
        ),
        (
            "peak_bdd_nodes".to_owned(),
            Value::u64(r.stats.peak_bdd_nodes as u64),
        ),
        (
            "outputs".to_owned(),
            Value::Arr(r.outputs.iter().map(output_value).collect()),
        ),
    ])
}

/// The deterministic `results` entry of an anytime [`CircuitReport`].
fn circuit_report_value(r: &CircuitReport) -> Value {
    Value::Obj(vec![
        ("lower".to_owned(), Value::str(r.lower.to_string())),
        ("upper".to_owned(), Value::str(r.upper.to_string())),
        (
            "exact".to_owned(),
            match r.exact {
                Some(d) => Value::str(d.to_string()),
                None => Value::Null,
            },
        ),
        (
            "topological".to_owned(),
            Value::str(r.topological.to_string()),
        ),
        ("retries".to_owned(), Value::u64(r.stats.retries as u64)),
        (
            "sequences_fallbacks".to_owned(),
            Value::u64(r.stats.sequences_fallbacks as u64),
        ),
        (
            "topological_fallbacks".to_owned(),
            Value::u64(r.stats.topological_fallbacks as u64),
        ),
        (
            "panics_caught".to_owned(),
            Value::u64(r.stats.panics_caught as u64),
        ),
        (
            "outputs".to_owned(),
            Value::Arr(r.outputs.iter().map(output_value).collect()),
        ),
    ])
}

/// The artifact's `circuit` section.
fn circuit_value(path: &str, netlist: &Netlist) -> Value {
    Value::Obj(vec![
        ("path".to_owned(), Value::str(path)),
        ("gates".to_owned(), Value::u64(netlist.gate_count() as u64)),
        (
            "inputs".to_owned(),
            Value::u64(netlist.inputs().len() as u64),
        ),
        (
            "outputs".to_owned(),
            Value::u64(netlist.outputs().len() as u64),
        ),
    ])
}

/// The artifact's `policy` section (the resolved invocation knobs).
fn policy_value(args: &Args, options: &DelayOptions) -> Value {
    let reorder = match args.reorder {
        ReorderPolicy::None => "off",
        ReorderPolicy::Manual => "manual",
        ReorderPolicy::OnPressure { .. } => "pressure",
    };
    Value::Obj(vec![
        ("model".to_owned(), Value::str(&args.model)),
        ("delays".to_owned(), Value::str(&args.delays)),
        ("threads".to_owned(), Value::u64(args.threads as u64)),
        ("reorder".to_owned(), Value::str(reorder)),
        ("tbf_cache".to_owned(), Value::str(options.tbf_cache.name())),
        (
            "complement_edges".to_owned(),
            Value::Bool(options.complement_edges),
        ),
        ("gc".to_owned(), Value::str(options.gc.name())),
        (
            "max_straddling_paths".to_owned(),
            Value::u64(options.max_straddling_paths as u64),
        ),
        (
            "max_bdd_nodes".to_owned(),
            Value::u64(options.max_bdd_nodes as u64),
        ),
        (
            "time_budget_ms".to_owned(),
            match args.time_budget_ms {
                Some(ms) => Value::u64(ms),
                None => Value::Null,
            },
        ),
    ])
}

/// Runs the requested delay models, printing the human report (unless
/// stdout carries the artifact) and collecting the deterministic
/// `results` section. Returns the failure count alongside it.
fn run_models(args: &Args, netlist: &Netlist, options: &DelayOptions) -> (u32, Value) {
    let mut results: Vec<(String, Value)> = vec![(
        "topological".to_owned(),
        Value::str(topological_delay(netlist).to_string()),
    )];
    let want = |m: &str| args.model == m || args.model == "all";
    let mut failures = 0;
    if want("two-vector") {
        let _phase = Phase::enter("two_vector");
        match two_vector_delay(netlist, options) {
            Ok(r) => {
                print_report("two-vector", &r, args.per_output);
                if args.replay {
                    match &r.witness {
                        Some(w) => {
                            let stim = Stimulus::vector_pair(&w.before, &w.after);
                            let sim = simulate(netlist, &w.delays, &stim.waveforms(netlist));
                            let out = netlist
                                .outputs()
                                .iter()
                                .find(|(name, _)| *name == w.output)
                                .expect("witness names an output")
                                .1;
                            say!(
                                "    witness replay on `{}`: last transition at {}",
                                w.output,
                                sim.waveform(out)
                                    .last_transition()
                                    .map(|t| t.to_string())
                                    .unwrap_or_else(|| "never".into())
                            );
                        }
                        None => say!("    no witness (delay 0)"),
                    }
                }
                results.push(("two_vector".to_owned(), report_value(&r)));
            }
            Err(e) => {
                diag!("two-vector: {e}");
                results.push((
                    "two_vector".to_owned(),
                    Value::Obj(vec![("error".to_owned(), Value::str(e.to_string()))]),
                ));
                failures += 1;
            }
        }
    }
    if want("sequences") {
        let _phase = Phase::enter("sequences");
        match sequences_delay(netlist, options) {
            Ok(r) => {
                print_report("sequences", &r, args.per_output);
                results.push(("sequences".to_owned(), report_value(&r)));
            }
            Err(e) => {
                diag!("sequences: {e}");
                results.push((
                    "sequences".to_owned(),
                    Value::Obj(vec![("error".to_owned(), Value::str(e.to_string()))]),
                ));
                failures += 1;
            }
        }
    }
    if want("floating") {
        let _phase = Phase::enter("floating");
        match floating_delay(netlist, options) {
            Ok(r) => {
                print_report("floating", &r, args.per_output);
                results.push(("floating".to_owned(), report_value(&r)));
            }
            Err(e) => {
                diag!("floating: {e}");
                results.push((
                    "floating".to_owned(),
                    Value::Obj(vec![("error".to_owned(), Value::str(e.to_string()))]),
                ));
                failures += 1;
            }
        }
    }
    if args.model == "anytime" {
        let _phase = Phase::enter("anytime");
        let policy = AnalysisPolicy::with_options(options.clone()).with_threads(args.threads);
        let r = analyze(netlist, &policy);
        match r.exact {
            Some(d) => say!("{:<12} {:>10}   (exact)", "anytime", d.to_string()),
            None => say!(
                "{:<12} [{}, {}]   (bounds; {} retries, {} fallbacks)",
                "anytime",
                r.lower,
                r.upper,
                r.stats.retries,
                r.stats.sequences_fallbacks + r.stats.topological_fallbacks
            ),
        }
        if args.per_output {
            for o in &r.outputs {
                print_output_line(o);
            }
        }
        results.push(("anytime".to_owned(), circuit_report_value(&r)));
    }
    (failures, Value::Obj(results))
}

fn serve_usage() {
    eprintln!(
        "usage: tbf serve [--threads N] [--listen SOCKET_PATH] [--max-in-flight N] \
         [--max-gates N] [--max-frame-bytes N] [--session-time-budget MS] \
         [--max-requests N] [--max-attempts N] [--backoff MS] [--max-backoff MS] \
         [--cache-capacity N] [--max-sessions N] [--drain MS] [--max-paths N] [--max-bdd N] \
         [--reorder off|manual|pressure] [--emit-metrics PATH] [--quiet]\n\
         \n\
         Reads one JSON request per line on stdin (or SOCKET_PATH) and writes one\n\
         schema-versioned JSON response per line; EOF or SIGTERM drains and exits 0."
    );
}

/// Parses `tbf serve` flags into the session and runner configs.
fn parse_serve_args(
    mut it: impl Iterator<Item = String>,
) -> Result<(tbf_serve::ServeConfig, tbf_serve::RunnerConfig), String> {
    let mut config = tbf_serve::ServeConfig::default();
    let mut runner = tbf_serve::RunnerConfig::default();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("missing value for {flag}"));
        let parsed = |flag: &str, v: String| -> Result<u64, String> {
            v.parse().map_err(|e| format!("{flag}: {e}"))
        };
        match a.as_str() {
            "--threads" => config.threads = parsed("--threads", value("--threads")?)? as usize,
            "--listen" => runner.listen = Some(value("--listen")?),
            "--max-in-flight" => {
                config.max_in_flight =
                    parsed("--max-in-flight", value("--max-in-flight")?)? as usize;
            }
            "--max-gates" => {
                config.max_gates = parsed("--max-gates", value("--max-gates")?)? as usize;
            }
            "--max-frame-bytes" => {
                config.max_frame_bytes =
                    parsed("--max-frame-bytes", value("--max-frame-bytes")?)? as usize;
            }
            "--session-time-budget" => {
                config.session_time_budget = Some(std::time::Duration::from_millis(parsed(
                    "--session-time-budget",
                    value("--session-time-budget")?,
                )?));
            }
            "--max-requests" => {
                config.max_requests = parsed("--max-requests", value("--max-requests")?)?;
            }
            "--max-attempts" => {
                config.max_attempts =
                    parsed("--max-attempts", value("--max-attempts")?)?.max(1) as u32;
            }
            "--backoff" => config.backoff_ms = parsed("--backoff", value("--backoff")?)?,
            "--max-backoff" => {
                config.max_backoff_ms = parsed("--max-backoff", value("--max-backoff")?)?;
            }
            "--cache-capacity" => {
                config.cache_capacity =
                    parsed("--cache-capacity", value("--cache-capacity")?)? as usize;
            }
            "--max-sessions" => {
                config.max_sessions = parsed("--max-sessions", value("--max-sessions")?)? as usize;
            }
            "--drain" => {
                config.drain =
                    std::time::Duration::from_millis(parsed("--drain", value("--drain")?)?);
            }
            "--max-paths" => {
                config.defaults.max_straddling_paths =
                    parsed("--max-paths", value("--max-paths")?)? as usize;
            }
            "--max-bdd" => {
                config.defaults.max_bdd_nodes = parsed("--max-bdd", value("--max-bdd")?)? as usize;
            }
            "--reorder" => {
                config.defaults.reorder = match value("--reorder")?.as_str() {
                    "off" => ReorderPolicy::None,
                    "manual" => ReorderPolicy::Manual,
                    "pressure" => ReorderPolicy::OnPressure {
                        trigger_nodes: PRESSURE_TRIGGER_NODES,
                        max_growth: PRESSURE_MAX_GROWTH,
                    },
                    other => {
                        return Err(format!(
                            "--reorder must be off, manual or pressure, got `{other}`"
                        ))
                    }
                };
            }
            "--emit-metrics" => runner.emit_metrics = Some(value("--emit-metrics")?),
            "--quiet" => runner.quiet = true,
            "--help" | "-h" => return Err("help".into()),
            other => return Err(format!("unknown serve argument {other}")),
        }
    }
    Ok((config, runner))
}

/// The `tbf serve` subcommand: run the request loop until EOF/SIGTERM.
fn run_serve() -> ExitCode {
    let (config, runner) = match parse_serve_args(std::env::args().skip(2)) {
        Ok(parsed) => parsed,
        Err(e) => {
            if e != "help" {
                eprintln!("error: {e}");
            }
            serve_usage();
            return ExitCode::FAILURE;
        }
    };
    let result = match runner.listen.clone() {
        Some(path) => tbf_serve::serve_unix_socket(config, &runner, &path),
        None => tbf_serve::serve_stdio(config, &runner),
    };
    match result {
        Ok(0) => ExitCode::SUCCESS,
        Ok(code) => ExitCode::from(code.clamp(0, 255) as u8),
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    if std::env::args().nth(1).as_deref() == Some("serve") {
        return run_serve();
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            if e != "help" {
                eprintln!("error: {e}");
            }
            usage();
            return ExitCode::FAILURE;
        }
    };
    let streaming = args.emit_metrics.as_deref() == Some("-");
    tbf_obs::diag::set_quiet(args.quiet || streaming);
    HUMAN.store(!streaming, Ordering::Relaxed);
    let netlist = match load(&args) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut options = DelayOptions::default();
    if let Some(p) = args.max_paths {
        options.max_straddling_paths = p;
    }
    if let Some(b) = args.max_bdd {
        options.max_bdd_nodes = b;
    }
    if let Some(ms) = args.time_budget_ms {
        options.time_budget = Some(std::time::Duration::from_millis(ms));
    }
    options.reorder = args.reorder;
    options.tbf_cache = args.tbf_cache;
    options.complement_edges = args.complement_edges;
    options.gc = args.gc;

    say!(
        "{}: {} gates, {} inputs, {} outputs",
        args.netlist,
        netlist.gate_count(),
        netlist.inputs().len(),
        netlist.outputs().len()
    );
    say!(
        "{:<12} {:>10}",
        "topological",
        topological_delay(&netlist).to_string()
    );

    // With the `obs` feature the whole analysis runs inside `observe`,
    // so BDD counters and the phase tree land in the artifact; without
    // it the artifact still carries the deterministic result sections.
    #[cfg(feature = "obs")]
    let started = std::time::Instant::now();
    #[cfg(feature = "obs")]
    let ((failures, results), observation) = if args.emit_metrics.is_some() {
        let (out, o) = tbf_core::obs::observe(|| run_models(&args, &netlist, &options));
        (out, Some(o))
    } else {
        (run_models(&args, &netlist, &options), None)
    };
    #[cfg(not(feature = "obs"))]
    let (failures, results) = run_models(&args, &netlist, &options);

    if let Some(target) = &args.emit_metrics {
        let mut artifact = RunArtifact::new();
        artifact.section("circuit", circuit_value(&args.netlist, &netlist));
        artifact.section("policy", policy_value(&args, &options));
        artifact.section("results", results);
        #[cfg(feature = "obs")]
        if let Some(o) = &observation {
            artifact.section("counters", tbf_obs::artifact::counters_section(&o.counters));
            artifact.section(
                "histograms",
                tbf_obs::artifact::histograms_section(&o.counters),
            );
            artifact.section("phases", tbf_obs::phase::to_value(&o.phases));
            artifact.section(
                "timing",
                Value::Obj(vec![
                    (
                        "total_us".to_owned(),
                        Value::u64(started.elapsed().as_micros() as u64),
                    ),
                    ("phases".to_owned(), tbf_obs::phase::timing_rows(&o.phases)),
                ]),
            );
        }
        let text = artifact.render();
        if target == "-" {
            println!("{text}");
        } else if let Err(e) = std::fs::write(target, text + "\n") {
            eprintln!("error: {target}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
