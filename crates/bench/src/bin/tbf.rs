//! `tbf` — command-line exact delay analysis for `.bench` / `.blif`
//! netlists.
//!
//! ```text
//! Usage: tbf [OPTIONS] <NETLIST>
//!
//!   <NETLIST>              path to an ISCAS-85 .bench or a BLIF file
//!
//! Options:
//!   --model <M>            two-vector | sequences | floating | anytime | all
//!                                                                   [default: all]
//!   --delays <D>           unit | mcnc                              [default: mcnc]
//!   --dmin-ratio <F>       overwrite every dmin with F·dmax (0 ≤ F ≤ 1)
//!   --max-paths <N>        delay-dependent path cap
//!   --max-bdd <N>          BDD node cap
//!   --time-budget <MS>     wall-clock budget in milliseconds; exceeding it
//!                          degrades results to sound bounds (anytime mode)
//!   --threads <N>          worker threads for anytime cone analysis;
//!                          0 = one per core                         [default: 1]
//!   --reorder <R>          off | manual | pressure: dynamic BDD variable
//!                          reordering (sifting). Representation-only —
//!                          reported delays and witnesses are identical for
//!                          every setting                       [default: off]
//!   --replay               simulate the 2-vector witness and report the
//!                          observed last transition
//!   --per-output           print the per-output breakdown
//! ```
//!
//! The `anytime` model runs the graceful-degradation driver
//! ([`tbf_core::analyze`]): it never fails — outputs that blow a cap,
//! the deadline, or even panic the engine are reported with sound
//! `[lower, upper]` bounds and the cause of the degradation.

use std::process::ExitCode;

use tbf_core::{
    analyze, floating_delay, sequences_delay, topological_delay, two_vector_delay, AnalysisPolicy,
    DelayOptions, DelayReport, OutputStatus, ReorderPolicy,
};
use tbf_logic::parsers::bench::parse_bench;
use tbf_logic::parsers::blif::parse_blif;
use tbf_logic::parsers::{mcnc_like_delays, unit_delays};
use tbf_logic::{DelayBounds, Netlist};
use tbf_sim::{simulate, Stimulus};

struct Args {
    netlist: String,
    model: String,
    delays: String,
    dmin_ratio: Option<f64>,
    max_paths: Option<usize>,
    max_bdd: Option<usize>,
    time_budget_ms: Option<u64>,
    threads: usize,
    reorder: ReorderPolicy,
    replay: bool,
    per_output: bool,
}

/// The `--reorder pressure` trigger: sift once the manager holds this
/// many nodes, then re-arm at twice the post-sift count.
const PRESSURE_TRIGGER_NODES: usize = 50_000;

/// The `--reorder pressure` growth tolerance (percent of the starting
/// live size a sift may transiently cost while exploring).
const PRESSURE_MAX_GROWTH: usize = 120;

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        netlist: String::new(),
        model: "all".into(),
        delays: "mcnc".into(),
        dmin_ratio: None,
        max_paths: None,
        max_bdd: None,
        time_budget_ms: None,
        threads: 1,
        reorder: ReorderPolicy::None,
        replay: false,
        per_output: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("missing value for {flag}"));
        match a.as_str() {
            "--model" => args.model = value("--model")?,
            "--delays" => args.delays = value("--delays")?,
            "--dmin-ratio" => {
                let f: f64 = value("--dmin-ratio")?
                    .parse()
                    .map_err(|e| format!("--dmin-ratio: {e}"))?;
                if !(0.0..=1.0).contains(&f) {
                    return Err(format!("--dmin-ratio must be within [0, 1], got {f}"));
                }
                args.dmin_ratio = Some(f);
            }
            "--max-paths" => {
                args.max_paths = Some(
                    value("--max-paths")?
                        .parse()
                        .map_err(|e| format!("--max-paths: {e}"))?,
                )
            }
            "--max-bdd" => {
                args.max_bdd = Some(
                    value("--max-bdd")?
                        .parse()
                        .map_err(|e| format!("--max-bdd: {e}"))?,
                )
            }
            "--time-budget" => {
                args.time_budget_ms = Some(
                    value("--time-budget")?
                        .parse()
                        .map_err(|e| format!("--time-budget: {e}"))?,
                )
            }
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--reorder" => {
                args.reorder = match value("--reorder")?.as_str() {
                    "off" => ReorderPolicy::None,
                    "manual" => ReorderPolicy::Manual,
                    "pressure" => ReorderPolicy::OnPressure {
                        trigger_nodes: PRESSURE_TRIGGER_NODES,
                        max_growth: PRESSURE_MAX_GROWTH,
                    },
                    other => {
                        return Err(format!(
                            "--reorder must be off, manual or pressure, got `{other}`"
                        ))
                    }
                }
            }
            "--replay" => args.replay = true,
            "--per-output" => args.per_output = true,
            "--help" | "-h" => return Err("help".into()),
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other => {
                if args.netlist.is_empty() {
                    args.netlist = other.to_owned();
                } else {
                    return Err(format!("unexpected argument {other}"));
                }
            }
        }
    }
    if args.netlist.is_empty() {
        return Err("missing netlist path".into());
    }
    Ok(args)
}

fn usage() {
    eprintln!(
        "usage: tbf [--model two-vector|sequences|floating|anytime|all] \
         [--delays unit|mcnc] [--dmin-ratio F] [--max-paths N] [--max-bdd N] \
         [--time-budget MS] [--threads N] [--reorder off|manual|pressure] \
         [--replay] [--per-output] <netlist.bench|netlist.blif>"
    );
}

fn load(args: &Args) -> Result<Netlist, String> {
    let text =
        std::fs::read_to_string(&args.netlist).map_err(|e| format!("{}: {e}", args.netlist))?;
    let delay_fn = match args.delays.as_str() {
        "unit" => unit_delays as fn(_, _) -> _,
        "mcnc" => mcnc_like_delays as fn(_, _) -> _,
        other => return Err(format!("unknown delay model `{other}`")),
    };
    let netlist = if args.netlist.ends_with(".blif") {
        parse_blif(&text, delay_fn)
    } else {
        parse_bench(&text, delay_fn)
    }
    .map_err(|e| format!("{}: {e}", args.netlist))?;
    Ok(match args.dmin_ratio {
        Some(f) => netlist.map_delays(|d| DelayBounds::scaled_min(d.max, f)),
        None => netlist,
    })
}

fn print_report(label: &str, report: &DelayReport, per_output: bool) {
    println!(
        "{label:<12} {:>10}   ({} breakpoints, {} resolvents, {} LPs, peak {} BDD nodes)",
        report.delay.to_string(),
        report.stats.breakpoints_visited,
        report.stats.resolvents,
        report.stats.lps_solved,
        report.stats.peak_bdd_nodes
    );
    if per_output {
        for o in &report.outputs {
            print_output_line(o);
        }
    }
}

fn print_output_line(o: &tbf_core::OutputDelay) {
    let note = match o.status {
        OutputStatus::Exact => String::new(),
        OutputStatus::Bounded {
            lower,
            upper,
            cause,
        } => {
            format!(" (within [{lower}, {upper}]: {cause})")
        }
        OutputStatus::Fallback { cause } => format!(" (topological bound: {cause})"),
    };
    println!(
        "    {:<24} {:>10}{}  (topological {})",
        o.name,
        o.delay.to_string(),
        note,
        o.topological
    );
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            if e != "help" {
                eprintln!("error: {e}");
            }
            usage();
            return ExitCode::FAILURE;
        }
    };
    let netlist = match load(&args) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut options = DelayOptions::default();
    if let Some(p) = args.max_paths {
        options.max_straddling_paths = p;
    }
    if let Some(b) = args.max_bdd {
        options.max_bdd_nodes = b;
    }
    if let Some(ms) = args.time_budget_ms {
        options.time_budget = Some(std::time::Duration::from_millis(ms));
    }
    options.reorder = args.reorder;

    println!(
        "{}: {} gates, {} inputs, {} outputs",
        args.netlist,
        netlist.gate_count(),
        netlist.inputs().len(),
        netlist.outputs().len()
    );
    println!(
        "{:<12} {:>10}",
        "topological",
        topological_delay(&netlist).to_string()
    );

    let want = |m: &str| args.model == m || args.model == "all";
    let mut failures = 0;
    if want("two-vector") {
        match two_vector_delay(&netlist, &options) {
            Ok(r) => {
                print_report("two-vector", &r, args.per_output);
                if args.replay {
                    match &r.witness {
                        Some(w) => {
                            let stim = Stimulus::vector_pair(&w.before, &w.after);
                            let sim = simulate(&netlist, &w.delays, &stim.waveforms(&netlist));
                            let out = netlist
                                .outputs()
                                .iter()
                                .find(|(name, _)| *name == w.output)
                                .expect("witness names an output")
                                .1;
                            println!(
                                "    witness replay on `{}`: last transition at {}",
                                w.output,
                                sim.waveform(out)
                                    .last_transition()
                                    .map(|t| t.to_string())
                                    .unwrap_or_else(|| "never".into())
                            );
                        }
                        None => println!("    no witness (delay 0)"),
                    }
                }
            }
            Err(e) => {
                eprintln!("two-vector: {e}");
                failures += 1;
            }
        }
    }
    if want("sequences") {
        match sequences_delay(&netlist, &options) {
            Ok(r) => print_report("sequences", &r, args.per_output),
            Err(e) => {
                eprintln!("sequences: {e}");
                failures += 1;
            }
        }
    }
    if want("floating") {
        match floating_delay(&netlist, &options) {
            Ok(r) => print_report("floating", &r, args.per_output),
            Err(e) => {
                eprintln!("floating: {e}");
                failures += 1;
            }
        }
    }
    if args.model == "anytime" {
        let policy = AnalysisPolicy::with_options(options.clone()).with_threads(args.threads);
        let r = analyze(&netlist, &policy);
        match r.exact {
            Some(d) => println!("{:<12} {:>10}   (exact)", "anytime", d.to_string()),
            None => println!(
                "{:<12} [{}, {}]   (bounds; {} retries, {} fallbacks)",
                "anytime",
                r.lower,
                r.upper,
                r.stats.retries,
                r.stats.sequences_fallbacks + r.stats.topological_fallbacks
            ),
        }
        if args.per_output {
            for o in &r.outputs {
                print_output_line(o);
            }
        }
    }
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
