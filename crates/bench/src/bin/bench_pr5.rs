//! `bench_pr5` — the perf-trajectory baseline recorder for the unified
//! delay-model engine (PR 5).
//!
//! Runs the exact 2-vector engine over the golden circuit suite twice —
//! cross-breakpoint timed-node cache on and off — and writes a
//! schema-versioned JSON artifact with per-circuit wall time and the
//! engine's instantiation counters, so later PRs can diff perf against
//! a committed baseline instead of folklore.
//!
//! ```text
//! usage: bench_pr5 [OUT.json]        (default: BENCH_pr5.json)
//! ```
//!
//! The artifact is deterministic except for the `wall_ms` fields; the
//! counter columns are byte-stable across runs, threads, and reorder
//! policies (see `crates/core/tests/obs_determinism.rs`).

use std::process::ExitCode;

/// Artifact schema name; bump `SCHEMA_VERSION` on shape changes.
#[cfg(feature = "obs")]
const SCHEMA: &str = "tbf-bench-pr5";
/// Current artifact schema version.
#[cfg(feature = "obs")]
const SCHEMA_VERSION: u64 = 1;

#[cfg(feature = "obs")]
fn main() -> ExitCode {
    use std::time::Instant;

    use tbf_core::obs::observe;
    use tbf_core::{two_vector_delay, DelayOptions};
    use tbf_logic::generators::adders::{carry_bypass, paper_bypass_adder, ripple_carry};
    use tbf_logic::generators::figures::{figure1_three_paths, figure4_example3, figure6_glitch};
    use tbf_logic::generators::random::random_dag;
    use tbf_logic::generators::trees::parity_tree;
    use tbf_logic::generators::unit_ninety_percent;
    use tbf_logic::parsers::bench::c17;
    use tbf_logic::parsers::mcnc_like_delays;
    use tbf_logic::Netlist;
    use tbf_obs::json::Value;
    use tbf_obs::Metric;

    // The engine-equivalence golden suite, so perf rows and correctness
    // goldens cover the same circuits.
    let d = unit_ninety_percent();
    let suite: Vec<(&str, Netlist)> = vec![
        ("c17", c17(mcnc_like_delays)),
        ("paper_bypass_adder", paper_bypass_adder()),
        ("ripple_carry_4", ripple_carry(4, d)),
        ("carry_bypass_2x2", carry_bypass(2, 2, d)),
        ("parity_tree_6", parity_tree(6, d)),
        ("figure1_three_paths", figure1_three_paths()),
        ("figure4_example3", figure4_example3()),
        ("figure6_glitch", figure6_glitch()),
        ("random_dag_6x30", random_dag(6, 30, 3, 0x5EED)),
    ];

    /// One measured engine run: report plus the counters the PR tracks.
    fn measure(netlist: &Netlist, cache: bool) -> Value {
        let options = DelayOptions {
            tbf_cache: cache,
            ..DelayOptions::default()
        };
        let start = Instant::now();
        let (report, obs) = observe(|| two_vector_delay(netlist, &options));
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let report = report.expect("golden-suite circuits analyze exactly");
        Value::Obj(vec![
            ("tbf_cache".to_owned(), Value::Bool(cache)),
            ("delay".to_owned(), Value::str(report.delay.to_string())),
            ("wall_ms".to_owned(), Value::str(format!("{wall_ms:.3}"))),
            (
                "breakpoints_visited".to_owned(),
                Value::u64(report.stats.breakpoints_visited as u64),
            ),
            (
                "tbf_instantiations".to_owned(),
                Value::u64(obs.counters.get(Metric::TbfInstantiations)),
            ),
            (
                "tbf_cache_hits".to_owned(),
                Value::u64(obs.counters.get(Metric::TbfCacheHits)),
            ),
        ])
    }

    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr5.json".to_owned());
    let mut rows = Vec::new();
    for (name, netlist) in &suite {
        eprintln!("bench_pr5: {name}");
        rows.push(Value::Obj(vec![
            ("circuit".to_owned(), Value::str(*name)),
            ("gates".to_owned(), Value::u64(netlist.gate_count() as u64)),
            ("cache_on".to_owned(), measure(netlist, true)),
            ("cache_off".to_owned(), measure(netlist, false)),
        ]));
    }
    let artifact = Value::Obj(vec![
        ("schema".to_owned(), Value::str(SCHEMA)),
        ("schema_version".to_owned(), Value::u64(SCHEMA_VERSION)),
        ("model".to_owned(), Value::str("two-vector")),
        ("rows".to_owned(), Value::Arr(rows)),
    ]);
    if let Err(e) = std::fs::write(&out, artifact.to_pretty() + "\n") {
        eprintln!("bench_pr5: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("bench_pr5: wrote {out}");
    ExitCode::SUCCESS
}

#[cfg(not(feature = "obs"))]
fn main() -> ExitCode {
    eprintln!("bench_pr5 needs the `obs` feature (enabled by default): the artifact records engine counters");
    ExitCode::FAILURE
}
