//! Regenerates the §10 analysis: the Theorem 5 precision sweep (2-vector
//! delay vs the lower-bound fraction `f`) and the Theorem 3 invariance of
//! the sequences delay — for the paper's adder and a scaled-up bypass
//! adder.
//!
//! ```sh
//! cargo run -p tbf-bench --release --bin lower_bounds
//! ```

use tbf_core::lower_bounds::{precision_sweep, precision_threshold};
use tbf_core::{sequences_delay, DelayOptions};
use tbf_logic::generators::adders::{carry_bypass, paper_bypass_adder};
use tbf_logic::generators::unit_ninety_percent;
use tbf_logic::{DelayBounds, Netlist};

fn sweep(name: &str, n: &Netlist, opts: &DelayOptions) {
    let f_star = match precision_threshold(n, opts) {
        Ok(f) => f,
        Err(e) => {
            println!("\n{name}: threshold not computable ({e})");
            return;
        }
    };
    println!(
        "\n{name}: L = {}, threshold f* = {f_star:.3}",
        n.topological_delay()
    );
    println!("{:>6} {:>10}", "f", "D(2)");
    match precision_sweep(n, 11, opts) {
        Ok(points) => {
            for p in points {
                let marker = if p.fraction() < f_star {
                    " (plateau)"
                } else {
                    ""
                };
                println!("{:>6.2} {:>10}{marker}", p.fraction(), p.delay.to_string());
            }
        }
        Err(e) => println!("  sweep capped: {e}"),
    }
}

fn invariance(name: &str, n: &Netlist, opts: &DelayOptions) {
    print!("{name}: D(ω⁻) at f ∈ {{0, .3, .6, .9}} = ");
    let mut vals = Vec::new();
    for f in [0.0, 0.3, 0.6, 0.9] {
        let scaled = n.map_delays(|d| DelayBounds::scaled_min(d.max, f));
        match sequences_delay(&scaled, opts) {
            Ok(r) => vals.push(r.delay),
            Err(e) => {
                println!("capped ({e})");
                return;
            }
        }
    }
    let strs: Vec<String> = vals.iter().map(|t| t.to_string()).collect();
    let invariant = vals.windows(2).all(|w| w[0] == w[1]);
    println!(
        "{} → {}",
        strs.join(", "),
        if invariant {
            "invariant (Theorem 3 holds)"
        } else {
            "VARIES (violation!)"
        }
    );
}

fn main() {
    let opts = DelayOptions {
        max_bdd_nodes: 16_000_000,
        ..DelayOptions::default()
    };
    println!("=== Theorem 5: 2-vector delay vs manufacturing precision ===");
    sweep("paper §11 adder", &paper_bypass_adder(), &opts);
    sweep(
        "bypass 4x4",
        &carry_bypass(4, 4, unit_ninety_percent()),
        &opts,
    );

    println!("\n=== Theorem 3: sequences delay is invariant in dmin ===");
    invariance("paper §11 adder", &paper_bypass_adder(), &opts);
    invariance(
        "bypass 4x4",
        &carry_bypass(4, 4, unit_ninety_percent()),
        &opts,
    );
}
