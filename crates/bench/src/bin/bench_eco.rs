//! `bench_eco` — the perf recorder for the incremental ECO engine
//! (PR 8).
//!
//! For each suite circuit it times a **cold** analysis of a 1-gate
//! edit (fresh `ConeStore`, every cone recomputed) against the
//! **incremental** path (store primed by analyzing the base first, so
//! only the cones reaching the edited gate recompute), and writes a
//! schema-versioned JSON artifact with both wall times and the reuse
//! split, so CI can diff the reuse counters against a committed
//! baseline and EXPERIMENTS.md can quote real numbers.
//!
//! ```text
//! usage: bench_eco [OUT.json] [REPS]   (default: BENCH_eco.json, 5)
//! ```
//!
//! The edit is deterministic — the middle gate's max delay is widened
//! by one time unit — so `reused`/`recomputed`/`outputs` are
//! byte-stable across runs and machines; only the `*_wall_ms` columns
//! vary. Both paths analyze the *edited* netlist and their reports are
//! asserted identical before a row is recorded.

use std::process::ExitCode;

/// Artifact schema name; bump `SCHEMA_VERSION` on shape changes.
const SCHEMA: &str = "tbf-bench-eco";
/// Current artifact schema version.
const SCHEMA_VERSION: u64 = 1;

fn main() -> ExitCode {
    use std::time::Instant;

    use tbf_core::{analyze_eco, AnalysisBudget, AnalysisPolicy, ConeStore};
    use tbf_logic::generators::adders::{carry_bypass, ripple_carry};
    use tbf_logic::generators::random::random_dag;
    use tbf_logic::generators::unit_ninety_percent;
    use tbf_logic::parsers::bench::c17;
    use tbf_logic::parsers::mcnc_like_delays;
    use tbf_logic::{DelayBounds, GateKind, Netlist, Time};
    use tbf_obs::json::Value;

    /// Rebuild `netlist` with the `ordinal`-th gate's max delay widened
    /// by one unit — the canonical 1-gate ECO edit: it flips exactly
    /// the slice signatures of the cones whose fanin set reaches the
    /// gate.
    fn bump_gate_delay(netlist: &Netlist, ordinal: usize) -> Netlist {
        let target = netlist
            .nodes()
            .filter(|(_, n)| n.kind() != GateKind::Input)
            .nth(ordinal)
            .map(|(id, _)| id)
            .expect("gate ordinal in range");
        let mut b = Netlist::builder();
        let mut map = Vec::with_capacity(netlist.len());
        for (id, node) in netlist.nodes() {
            let new_id = if node.kind() == GateKind::Input {
                b.input(node.name())
            } else {
                let fanins: Vec<_> = node.fanins().iter().map(|f| map[f.index()]).collect();
                let mut delay = node.delay();
                if id == target {
                    delay = DelayBounds::new(delay.min, delay.max + Time::from_int(1));
                }
                b.gate(node.kind(), node.name(), fanins, delay)
                    .expect("rebuild preserves unique names")
            };
            map.push(new_id);
        }
        for (name, id) in netlist.outputs() {
            b.output(name, map[id.index()]);
        }
        b.finish().expect("rebuild preserves outputs")
    }

    let d = unit_ninety_percent();
    let suite: Vec<(&str, Netlist)> = vec![
        ("c17", c17(mcnc_like_delays)),
        ("ripple_carry_8", ripple_carry(8, d)),
        ("ripple_carry_16", ripple_carry(16, d)),
        ("carry_bypass_4x4", carry_bypass(4, 4, d)),
        ("random_dag_6x30", random_dag(6, 30, 3, 0x5EED)),
    ];

    let mut args = std::env::args().skip(1);
    let out = args.next().unwrap_or_else(|| "BENCH_eco.json".to_owned());
    let reps: u32 = match args.next().map(|r| r.parse()).transpose() {
        Ok(r) => r.unwrap_or(5),
        Err(e) => {
            eprintln!("bench_eco: REPS must be a number: {e}");
            return ExitCode::FAILURE;
        }
    };

    let policy = AnalysisPolicy::default();
    let mut rows = Vec::new();
    for (name, base) in &suite {
        eprintln!("bench_eco: {name}");
        let edited = bump_gate_delay(base, base.gate_count() / 2);
        let mut cold_ms = f64::INFINITY;
        let mut incr_ms = f64::INFINITY;
        let mut split = tbf_core::EcoStats::default();
        for rep in 0..reps.max(1) {
            // Cold: a fresh store sees every cone signature miss.
            let mut cold_store = ConeStore::new(256);
            let budget = AnalysisBudget::from_options(&policy.options).shared();
            let start = Instant::now();
            let (cold_report, cold_eco) =
                analyze_eco(&edited, &policy, budget, &mut cold_store, true);
            let cold_elapsed = start.elapsed().as_secs_f64() * 1e3;
            assert_eq!(cold_eco.reused, 0, "{name}: cold run reused a cone");

            // Incremental: prime the store on the base (untimed), then
            // time the edited run that reuses the unaffected cones.
            let mut store = ConeStore::new(256);
            let budget = AnalysisBudget::from_options(&policy.options).shared();
            let _ = analyze_eco(base, &policy, budget, &mut store, true);
            let budget = AnalysisBudget::from_options(&policy.options).shared();
            let start = Instant::now();
            let (incr_report, incr_eco) = analyze_eco(&edited, &policy, budget, &mut store, true);
            let incr_elapsed = start.elapsed().as_secs_f64() * 1e3;

            assert_eq!(
                format!("{cold_report:?}"),
                format!("{incr_report:?}"),
                "{name}: incremental report diverged from cold"
            );
            split = incr_eco;
            // Skip the cold first repetition: it measures page faults
            // and lazy init, not the engine.
            if rep > 0 || reps == 1 {
                cold_ms = cold_ms.min(cold_elapsed);
                incr_ms = incr_ms.min(incr_elapsed);
            }
        }
        rows.push(Value::Obj(vec![
            ("circuit".to_owned(), Value::str(*name)),
            ("gates".to_owned(), Value::u64(base.gate_count() as u64)),
            (
                "outputs".to_owned(),
                Value::u64(base.outputs().len() as u64),
            ),
            ("reused".to_owned(), Value::u64(split.reused as u64)),
            ("recomputed".to_owned(), Value::u64(split.recomputed as u64)),
            (
                "cold_wall_ms".to_owned(),
                Value::Num(format!("{cold_ms:.3}")),
            ),
            (
                "incr_wall_ms".to_owned(),
                Value::Num(format!("{incr_ms:.3}")),
            ),
        ]));
    }
    let artifact = Value::Obj(vec![
        ("schema".to_owned(), Value::str(SCHEMA)),
        ("schema_version".to_owned(), Value::u64(SCHEMA_VERSION)),
        (
            "edit".to_owned(),
            Value::str("middle gate max delay +1 unit"),
        ),
        ("reps".to_owned(), Value::u64(u64::from(reps))),
        ("rows".to_owned(), Value::Arr(rows)),
    ]);
    if let Err(e) = std::fs::write(&out, artifact.to_pretty() + "\n") {
        eprintln!("bench_eco: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("bench_eco: wrote {out}");
    ExitCode::SUCCESS
}
