//! Regenerates every worked example / figure of the paper with a
//! paper-value vs measured-value column — the per-figure index of
//! `EXPERIMENTS.md`.
//!
//! ```sh
//! cargo run -p tbf-bench --release --bin examples_table
//! ```

use tbf_core::{floating_delay, sequences_delay, two_vector_delay, DelayOptions, TbfExpr};
use tbf_logic::generators::adders::paper_bypass_adder;
use tbf_logic::generators::figures::{
    figure1_three_paths, figure4_example3, figure5_example4, figure6_glitch,
};
use tbf_logic::paths::all_paths;
use tbf_logic::{DelayBounds, Time};
use tbf_lp::{PathLp, PathLpOutcome};

struct Check {
    id: &'static str,
    what: &'static str,
    paper: String,
    measured: String,
}

impl Check {
    fn ok(&self) -> bool {
        self.paper == self.measured
    }
}

fn main() {
    let opts = DelayOptions::default();
    let mut checks: Vec<Check> = Vec::new();

    // Example 1 (Figure 1): falling-transition sensitization of P1 is
    // topologically infeasible.
    {
        let n = figure1_three_paths();
        let p1 = n.node(n.find("p1").unwrap()).delay();
        let mut lp = PathLp::new(&[
            (p1.min.scaled(), p1.max.scaled()),
            (Time::from_int(1).scaled(), Time::from_int(2).scaled()),
            (Time::from_int(1).scaled(), Time::from_int(2).scaled()),
        ]);
        lp.t_greater_than(&[1]);
        lp.t_less_than(&[2]);
        lp.set_t_window(p1.min.scaled(), p1.max.scaled());
        let outcome = match lp.solve() {
            PathLpOutcome::Infeasible => "infeasible",
            PathLpOutcome::Feasible { .. } => "feasible",
        };
        checks.push(Check {
            id: "Ex.1/Fig.1",
            what: "P1 falling sensitization",
            paper: "infeasible".into(),
            measured: outcome.into(),
        });
    }

    // Example 2 (Figure 2): the TBF a(t−1) ⊕ b(t+1) on step inputs
    // (a rises at 0, b rises at 3) produces a pulse on [1, 2).
    {
        let f = TbfExpr::var(0, -Time::from_int(1)).xor(TbfExpr::var(1, Time::from_int(1)));
        let wave = |i: usize, t: Time| {
            if i == 0 {
                t >= Time::ZERO
            } else {
                t >= Time::from_int(3)
            }
        };
        let measured = format!(
            "{}{}{}",
            u8::from(f.eval_at(Time::from_units(0.5), &wave)),
            u8::from(f.eval_at(Time::from_units(1.5), &wave)),
            u8::from(f.eval_at(Time::from_units(2.5), &wave)),
        );
        checks.push(Check {
            id: "Ex.2/Fig.2",
            what: "TBF waveform at t = 0.5/1.5/2.5",
            paper: "010".into(),
            measured,
        });
    }

    // Figure 3: a rise-3/fall-2 buffer shrinks a width-5 pulse to 4.
    {
        let stage = TbfExpr::rise_fall_buffer(0, Time::from_int(3), Time::from_int(2));
        let wave = |_: usize, t: Time| t >= Time::ZERO && t < Time::from_int(5);
        // Output high on [3, 7): measure its width on the grid.
        let mut width = 0i64;
        for k in 0..120 {
            let t = Time::from_units(k as f64 * 0.1);
            if stage.eval_at(t, &wave) {
                width += 1;
            }
        }
        checks.push(Check {
            id: "Fig.3",
            what: "pulse width after rise-3/fall-2 buffer",
            paper: "4".into(),
            measured: format!("{}", width as f64 / 10.0),
        });
    }

    // Example 3 (Figure 4): exact 2-vector delay = 4.
    {
        let r = two_vector_delay(&figure4_example3(), &opts).unwrap();
        checks.push(Check {
            id: "Ex.3/Fig.4",
            what: "exact 2-vector delay",
            paper: "4".into(),
            measured: r.delay.to_string(),
        });
    }

    // Example 4 (Figure 5): path groups at t = 2.8.
    {
        let n = figure5_example4();
        let out = n.find("g5").unwrap();
        let t28 = Time::from_units(2.8);
        let paths = all_paths(&n, out, 100).unwrap();
        let neg = paths.iter().filter(|p| p.length_min(&n) >= t28).count();
        let dd = paths.iter().filter(|p| p.straddles(&n, t28)).count();
        let pos = paths.len() - neg - dd;
        checks.push(Check {
            id: "Ex.4/Fig.5",
            what: "path groups (neg/dd/pos) at t=2.8",
            paper: "1/2/2".into(),
            measured: format!("{neg}/{dd}/{pos}"),
        });
    }

    // Example 5 (Figure 6): fixed delays → D(ω⁻) = 0, floating = 2.
    {
        let fixed = figure6_glitch();
        let seq = sequences_delay(&fixed, &opts).unwrap().delay;
        let fl = floating_delay(&fixed, &opts).unwrap().delay;
        checks.push(Check {
            id: "Ex.5/Fig.6",
            what: "fixed delays: D(ω⁻) / floating",
            paper: "0 / 2".into(),
            measured: format!("{seq} / {fl}"),
        });
        let variable = fixed.map_delays(|d| DelayBounds::new(d.max - Time::EPSILON, d.max));
        let seq_v = sequences_delay(&variable, &opts).unwrap().delay;
        checks.push(Check {
            id: "Thm.2",
            what: "variable delays: D(ω⁻) = floating",
            paper: "2".into(),
            measured: seq_v.to_string(),
        });
    }

    // §11 (Figures 7–9): bypass adder L = 40, exact = 24.
    {
        let n = paper_bypass_adder();
        let r = two_vector_delay(&n, &opts).unwrap();
        checks.push(Check {
            id: "§11/Fig.7",
            what: "bypass adder topological",
            paper: "40".into(),
            measured: r.topological.to_string(),
        });
        checks.push(Check {
            id: "§11/Fig.9",
            what: "bypass adder exact 2-vector",
            paper: "24".into(),
            measured: r.delay.to_string(),
        });
    }

    // Theorem 5: threshold f* = 24/40 = 0.6.
    {
        let n = paper_bypass_adder();
        let f = tbf_core::lower_bounds::precision_threshold(&n, &opts).unwrap();
        checks.push(Check {
            id: "Thm.5",
            what: "precision threshold f*",
            paper: "0.6".into(),
            measured: format!("{f:.1}"),
        });
    }

    println!(
        "{:<12} {:<38} {:>12} {:>12} {:>5}",
        "artifact", "quantity", "paper", "measured", "match"
    );
    println!("{}", "-".repeat(84));
    let mut all_ok = true;
    for c in &checks {
        all_ok &= c.ok();
        println!(
            "{:<12} {:<38} {:>12} {:>12} {:>5}",
            c.id,
            c.what,
            c.paper,
            c.measured,
            if c.ok() { "yes" } else { "NO" }
        );
    }
    println!("{}", "-".repeat(84));
    println!(
        "{}",
        if all_ok {
            "all paper values reproduced"
        } else {
            "MISMATCHES FOUND"
        }
    );
    std::process::exit(i32::from(!all_ok));
}
