//! `bench_pr7` — the perf-trajectory recorder for the complement-edged
//! BDD substrate and the size-gated `TbfCache` (PR 7).
//!
//! Runs the exact 2-vector engine over the golden circuit suite in
//! three configurations — cross-breakpoint timed-node cache in its
//! `auto` default and forced `off`, plus an `auto` run with complement
//! edges disabled — and writes a schema-versioned JSON artifact with
//! per-circuit wall time, the engine's instantiation counters, and BDD
//! allocation totals, so CI can diff perf against a committed baseline
//! instead of folklore.
//!
//! ```text
//! usage: bench_pr7 [OUT.json] [REPS]   (default: BENCH_pr7.json, 5)
//! ```
//!
//! Unlike the retired `bench_pr5` (schema v1), every measured field is
//! a real JSON number: `wall_ms` is a decimal token (minimum over
//! `REPS` repetitions) and `delay` is the exact rational
//! `{num, den}` with `den` = `TIME_SCALE`, so artifact rows can be
//! compared numerically. The counter columns are byte-stable across
//! runs, threads, and reorder policies (see
//! `crates/core/tests/obs_determinism.rs`); only `wall_ms` varies.

use std::process::ExitCode;

/// Artifact schema name; bump `SCHEMA_VERSION` on shape changes.
#[cfg(feature = "obs")]
const SCHEMA: &str = "tbf-bench-pr7";
/// Current artifact schema version (2 = numeric fields, CE columns).
#[cfg(feature = "obs")]
const SCHEMA_VERSION: u64 = 2;

#[cfg(feature = "obs")]
fn main() -> ExitCode {
    use std::time::Instant;

    use tbf_core::obs::observe;
    use tbf_core::{two_vector_delay, DelayOptions, TbfCacheMode};
    use tbf_logic::generators::adders::{carry_bypass, paper_bypass_adder, ripple_carry};
    use tbf_logic::generators::figures::{figure1_three_paths, figure4_example3, figure6_glitch};
    use tbf_logic::generators::random::random_dag;
    use tbf_logic::generators::trees::parity_tree;
    use tbf_logic::generators::unit_ninety_percent;
    use tbf_logic::parsers::bench::c17;
    use tbf_logic::parsers::mcnc_like_delays;
    use tbf_logic::{Netlist, TIME_SCALE};
    use tbf_obs::json::Value;
    use tbf_obs::Metric;

    // The engine-equivalence golden suite, so perf rows and correctness
    // goldens cover the same circuits.
    let d = unit_ninety_percent();
    let suite: Vec<(&str, Netlist)> = vec![
        ("c17", c17(mcnc_like_delays)),
        ("paper_bypass_adder", paper_bypass_adder()),
        ("ripple_carry_4", ripple_carry(4, d)),
        ("ripple_carry_8", ripple_carry(8, d)),
        ("carry_bypass_2x2", carry_bypass(2, 2, d)),
        ("carry_bypass_4x4", carry_bypass(4, 4, d)),
        ("parity_tree_6", parity_tree(6, d)),
        ("figure1_three_paths", figure1_three_paths()),
        ("figure4_example3", figure4_example3()),
        ("figure6_glitch", figure6_glitch()),
        ("random_dag_6x30", random_dag(6, 30, 3, 0x5EED)),
    ];

    /// The deepest `peak_nodes` recorded anywhere in the phase tree:
    /// the peak live BDD node count of the worst cone in the run.
    fn peak_nodes(tree: &[tbf_obs::PhaseNode]) -> u64 {
        tree.iter()
            .map(|p| p.peak_nodes.max(peak_nodes(&p.children)))
            .max()
            .unwrap_or(0)
    }

    /// The measured configurations, in artifact column order. Reps are
    /// interleaved across all three so no column systematically enjoys
    /// a warmer allocator than another.
    const CONFIGS: [(&str, TbfCacheMode, bool); 3] = [
        ("cache_on", TbfCacheMode::Auto, true),
        ("cache_off", TbfCacheMode::Off, true),
        ("ce_off", TbfCacheMode::Auto, false),
    ];

    /// All measured configurations of one circuit: per config, the
    /// minimum wall time over `reps` interleaved repetitions plus the
    /// (repetition-invariant) counters the PR tracks.
    fn measure_row(netlist: &Netlist, reps: u32) -> Vec<(String, Value)> {
        let mut best_ms = [f64::INFINITY; CONFIGS.len()];
        let mut last = Vec::new();
        for rep in 0..reps.max(1) {
            last.clear();
            for (i, (_, cache, complement_edges)) in CONFIGS.iter().enumerate() {
                let options = DelayOptions {
                    tbf_cache: *cache,
                    complement_edges: *complement_edges,
                    ..DelayOptions::default()
                };
                let start = Instant::now();
                let (report, obs) = observe(|| two_vector_delay(netlist, &options));
                // Skip the cold first repetition entirely: it measures
                // page faults and lazy init, not the engine.
                if rep > 0 || reps == 1 {
                    best_ms[i] = best_ms[i].min(start.elapsed().as_secs_f64() * 1e3);
                }
                last.push((report.expect("golden-suite circuits analyze exactly"), obs));
            }
        }
        CONFIGS
            .iter()
            .enumerate()
            .map(|(i, (name, cache, complement_edges))| {
                let (report, obs) = &last[i];
                let col = Value::Obj(vec![
                    ("tbf_cache".to_owned(), Value::str(cache.name())),
                    (
                        "complement_edges".to_owned(),
                        Value::Bool(*complement_edges),
                    ),
                    (
                        "delay".to_owned(),
                        Value::Obj(vec![
                            ("num".to_owned(), Value::i64(report.delay.scaled())),
                            ("den".to_owned(), Value::i64(TIME_SCALE)),
                        ]),
                    ),
                    (
                        "wall_ms".to_owned(),
                        Value::Num(format!("{:.3}", best_ms[i])),
                    ),
                    (
                        "breakpoints_visited".to_owned(),
                        Value::u64(report.stats.breakpoints_visited as u64),
                    ),
                    (
                        "tbf_instantiations".to_owned(),
                        Value::u64(obs.counters.get(Metric::TbfInstantiations)),
                    ),
                    (
                        "tbf_cache_hits".to_owned(),
                        Value::u64(obs.counters.get(Metric::TbfCacheHits)),
                    ),
                    (
                        "nodes_allocated".to_owned(),
                        Value::u64(obs.counters.get(Metric::NodesAllocated)),
                    ),
                    ("peak_nodes".to_owned(), Value::u64(peak_nodes(&obs.phases))),
                ]);
                ((*name).to_owned(), col)
            })
            .collect()
    }

    let mut args = std::env::args().skip(1);
    let out = args.next().unwrap_or_else(|| "BENCH_pr7.json".to_owned());
    let reps: u32 = match args.next().map(|r| r.parse()).transpose() {
        Ok(r) => r.unwrap_or(5),
        Err(e) => {
            eprintln!("bench_pr7: REPS must be a number: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut rows = Vec::new();
    for (name, netlist) in &suite {
        eprintln!("bench_pr7: {name}");
        let mut row = vec![
            ("circuit".to_owned(), Value::str(*name)),
            ("gates".to_owned(), Value::u64(netlist.gate_count() as u64)),
        ];
        row.extend(measure_row(netlist, reps));
        rows.push(Value::Obj(row));
    }
    let artifact = Value::Obj(vec![
        ("schema".to_owned(), Value::str(SCHEMA)),
        ("schema_version".to_owned(), Value::u64(SCHEMA_VERSION)),
        ("model".to_owned(), Value::str("two-vector")),
        ("reps".to_owned(), Value::u64(u64::from(reps))),
        ("rows".to_owned(), Value::Arr(rows)),
    ]);
    if let Err(e) = std::fs::write(&out, artifact.to_pretty() + "\n") {
        eprintln!("bench_pr7: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("bench_pr7: wrote {out}");
    ExitCode::SUCCESS
}

#[cfg(not(feature = "obs"))]
fn main() -> ExitCode {
    eprintln!("bench_pr7 needs the `obs` feature (enabled by default): the artifact records engine counters");
    ExitCode::FAILURE
}
