//! `bench_corpus` — the committed-corpus runner for the multi-format
//! front end (PR 9).
//!
//! Sweeps every circuit of the committed corpus under `benchmarks/`
//! through the exact anytime engine across a threads × reorder ×
//! complement-edges × gc configuration matrix, asserts that every
//! output resolves **exactly** and that the per-output delays are
//! identical in every configuration, and writes the schema-versioned
//! `BENCH_corpus.json` artifact: per-circuit exact delays (machine
//! independent, diffed against the committed baseline by CI) plus
//! per-configuration wall times and memory telemetry — peak arena
//! nodes, approximate arena bytes, and GC sweep/reclaim totals
//! (wall times are compared only within one run; the node counts are
//! deterministic and CI-diffable).
//!
//! ```text
//! usage: bench_corpus [OUT.json] [REPS] [--corpus DIR] [--regen]
//!        (defaults: BENCH_corpus.json, 3, benchmarks)
//! ```
//!
//! The corpus has two tiers:
//!
//! * `iscas85` — the genuine ISCAS-85 members the repository embeds
//!   (`c17`; the larger members need network retrieval, which this
//!   repository deliberately avoids — see `benchmarks/README.md`),
//! * `generated` — deterministic generator circuits at comparable and
//!   larger scales (adders, trees, datapath blocks, random DAGs), an
//!   EPFL-style arithmetic/control tier. Their `.bench` files embed
//!   `# @tbf delay` pragmas, so the measured delays are independent of
//!   the runner's delay callback.
//!
//! `--regen` rewrites the corpus files from the generator table via
//! [`tbf_logic::parsers::bench::write_bench`] and exits. The default
//! (measurement) mode re-derives each generator netlist and asserts
//! that the committed file still parses to the identical
//! `structural_signature`, so the corpus on disk can never drift from
//! the generators silently.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use tbf_core::{analyze, AnalysisPolicy, CircuitReport, DelayOptions, GcMode, ReorderPolicy};
use tbf_logic::generators::adders::{carry_bypass, carry_select, paper_bypass_adder, ripple_carry};
use tbf_logic::generators::datapath::{barrel_shifter, decoder};
use tbf_logic::generators::random::random_dag;
use tbf_logic::generators::trees::{comparator, mux_tree, parity_tree};
use tbf_logic::generators::unit_ninety_percent;
use tbf_logic::parsers::bench::{c17, write_bench, C17_BENCH};
use tbf_logic::parsers::blif::write_blif;
use tbf_logic::parsers::mcnc_like_delays;
use tbf_logic::{load_netlist, Format, Netlist, TIME_SCALE};
use tbf_obs::json::Value;

/// Artifact schema name; bump [`SCHEMA_VERSION`] on shape changes.
const SCHEMA: &str = "tbf-bench-corpus";
/// Current artifact schema version. Version 2 added the gc matrix axis
/// and the per-configuration memory columns (`peak_arena_nodes`,
/// `arena_bytes`, `gc_sweeps`, `gc_reclaimed`).
const SCHEMA_VERSION: u64 = 2;

/// The `--reorder pressure` trigger used by the pressure column
/// (mirrors the `tbf` CLI constants).
const PRESSURE_TRIGGER_NODES: usize = 50_000;
/// The `--reorder pressure` growth tolerance of the pressure column.
const PRESSURE_MAX_GROWTH: usize = 120;

/// One corpus circuit: artifact row name, tier, committed file format,
/// and the generator netlist the committed file must structurally
/// match.
struct Entry {
    name: &'static str,
    tier: &'static str,
    format: Format,
    netlist: Netlist,
}

/// The corpus table. Deterministic: every entry is either embedded
/// text or a seeded generator, so `--regen` output is byte-stable.
/// Circuits with constant nodes ship as BLIF (classic `.bench` has no
/// constant syntax); the rest as `.bench` — both writers are thereby
/// exercised on every committed-corpus check.
fn corpus() -> Vec<Entry> {
    let d = unit_ninety_percent();
    let entry = |name, tier, format, netlist| Entry {
        name,
        tier,
        format,
        netlist,
    };
    use Format::{Bench, Blif};
    vec![
        entry("c17", "iscas85", Bench, c17(mcnc_like_delays)),
        entry(
            "paper_bypass_adder",
            "generated",
            Bench,
            paper_bypass_adder(),
        ),
        entry("adder_ripple_16", "generated", Bench, ripple_carry(16, d)),
        entry(
            "adder_bypass_4x4",
            "generated",
            Bench,
            carry_bypass(4, 4, d),
        ),
        entry("adder_select_4x4", "generated", Blif, carry_select(4, 4, d)),
        entry("parity_tree_10", "generated", Bench, parity_tree(10, d)),
        entry("comparator_12", "generated", Bench, comparator(12, d)),
        entry("mux_tree_4", "generated", Blif, mux_tree(4, d)),
        entry("decoder_5", "generated", Bench, decoder(5, d)),
        entry("barrel_shifter_3", "generated", Bench, barrel_shifter(3, d)),
        entry(
            "adder_bypass_2x8",
            "generated",
            Bench,
            carry_bypass(2, 8, d),
        ),
        entry("adder_select_4x8", "generated", Blif, carry_select(4, 8, d)),
        entry(
            "random_dag_8x48",
            "generated",
            Bench,
            random_dag(8, 48, 3, 0x15CA5),
        ),
        entry(
            "random_dag_10x64",
            "generated",
            Bench,
            random_dag(10, 64, 3, 0xC0495),
        ),
    ]
}

/// The measured configurations, in artifact column order: one axis at
/// a time off the `t1/off/ce/nogc` baseline, per the determinism
/// contract (threads, reorder, complement edges, and arena GC are
/// representation-only). The two gc columns are the memory-evidence
/// pair: against their gc-off twins they show peak arena nodes
/// strictly lower wherever the build (or transient sift garbage)
/// crosses the pressure trigger, at byte-identical delays.
const CONFIGS: [(&str, usize, bool, bool, bool); 6] = [
    // (column, threads, pressure-reorder?, complement edges?, gc?)
    ("t1_off_ce", 1, false, true, false),
    ("t4_off_ce", 4, false, true, false),
    ("t1_pressure_ce", 1, true, true, false),
    ("t1_off_plain", 1, false, false, false),
    ("t1_off_ce_gc", 1, false, true, true),
    ("t1_pressure_ce_gc", 1, true, true, true),
];

fn policy(threads: usize, pressure: bool, complement_edges: bool, gc: bool) -> AnalysisPolicy {
    let options = DelayOptions {
        reorder: if pressure {
            ReorderPolicy::OnPressure {
                trigger_nodes: PRESSURE_TRIGGER_NODES,
                max_growth: PRESSURE_MAX_GROWTH,
            }
        } else {
            ReorderPolicy::None
        },
        complement_edges,
        gc: if gc { GcMode::On } else { GcMode::Off },
        ..DelayOptions::default()
    };
    AnalysisPolicy::with_options(options).with_threads(threads)
}

/// The per-output view the determinism assertion compares: name,
/// scaled delay, and exactness. Wall time and effort counters are
/// deliberately excluded.
fn output_view(report: &CircuitReport) -> Vec<(String, i64, bool)> {
    report
        .outputs
        .iter()
        .map(|o| (o.name.clone(), o.delay.scaled(), o.is_exact()))
        .collect()
}

fn rational(scaled: i64) -> Value {
    Value::Obj(vec![
        ("num".to_owned(), Value::i64(scaled)),
        ("den".to_owned(), Value::i64(TIME_SCALE)),
    ])
}

/// Measures one circuit across [`CONFIGS`]: asserts exactness and
/// cross-configuration agreement, returns the artifact row.
fn measure_row(entry: &Entry, reps: u32) -> Result<Value, String> {
    let netlist = &entry.netlist;
    let mut best_ms = [f64::INFINITY; CONFIGS.len()];
    let mut reports: Vec<CircuitReport> = Vec::new();
    // Repetitions interleave the configurations so no column
    // systematically enjoys a warmer allocator than another; the cold
    // first repetition is excluded from wall time (it measures lazy
    // init, not the engine).
    for rep in 0..reps.max(1) {
        reports.clear();
        for (i, (_, threads, pressure, ce, gc)) in CONFIGS.iter().enumerate() {
            let p = policy(*threads, *pressure, *ce, *gc);
            let start = Instant::now();
            let report = analyze(netlist, &p);
            if rep > 0 || reps == 1 {
                best_ms[i] = best_ms[i].min(start.elapsed().as_secs_f64() * 1e3);
            }
            reports.push(report);
        }
    }
    let base = &reports[0];
    if !base.all_exact() {
        let degraded: Vec<&str> = base
            .outputs
            .iter()
            .filter(|o| !o.is_exact())
            .map(|o| o.name.as_str())
            .collect();
        return Err(format!(
            "{}: outputs did not resolve exactly: {}",
            entry.name,
            degraded.join(", ")
        ));
    }
    let baseline_view = output_view(base);
    for (report, (config, ..)) in reports.iter().zip(CONFIGS.iter()).skip(1) {
        if output_view(report) != baseline_view {
            return Err(format!(
                "{}: configuration `{config}` changed the per-output delays — \
                 the determinism contract is broken",
                entry.name
            ));
        }
    }
    let exact = base.exact.ok_or_else(|| {
        format!(
            "{}: no exact circuit delay despite exact outputs",
            entry.name
        )
    })?;
    let outputs = base
        .outputs
        .iter()
        .map(|o| {
            Value::Obj(vec![
                ("name".to_owned(), Value::str(&o.name)),
                ("delay".to_owned(), rational(o.delay.scaled())),
            ])
        })
        .collect();
    // Memory telemetry comes from the last repetition's reports: peak
    // arena and the gc totals are functions of the logical build, so
    // every repetition of a configuration reports the same numbers
    // (arena_bytes includes allocator capacity and is informational).
    let configs = CONFIGS
        .iter()
        .enumerate()
        .map(|(i, (name, ..))| {
            let stats = &reports[i].stats;
            (
                (*name).to_owned(),
                Value::Obj(vec![
                    (
                        "wall_ms".to_owned(),
                        Value::Num(format!("{:.3}", best_ms[i])),
                    ),
                    (
                        "peak_arena_nodes".to_owned(),
                        Value::u64(stats.peak_arena_nodes as u64),
                    ),
                    (
                        "arena_bytes".to_owned(),
                        Value::u64(stats.arena_bytes as u64),
                    ),
                    ("gc_sweeps".to_owned(), Value::u64(stats.gc_sweeps)),
                    ("gc_reclaimed".to_owned(), Value::u64(stats.gc_reclaimed)),
                ]),
            )
        })
        .collect();
    Ok(Value::Obj(vec![
        ("circuit".to_owned(), Value::str(entry.name)),
        ("tier".to_owned(), Value::str(entry.tier)),
        ("gates".to_owned(), Value::u64(netlist.gate_count() as u64)),
        (
            "inputs".to_owned(),
            Value::u64(netlist.inputs().len() as u64),
        ),
        (
            "outputs".to_owned(),
            Value::u64(netlist.outputs().len() as u64),
        ),
        ("delay".to_owned(), rational(exact.scaled())),
        (
            "topological".to_owned(),
            rational(base.topological.scaled()),
        ),
        ("per_output".to_owned(), Value::Arr(outputs)),
        ("configs".to_owned(), Value::Obj(configs)),
    ]))
}

/// The corpus path of one entry.
fn corpus_path(dir: &Path, entry: &Entry) -> PathBuf {
    let ext = match entry.format {
        Format::Blif => "blif",
        _ => "bench",
    };
    dir.join(entry.tier).join(format!("{}.{ext}", entry.name))
}

/// `--regen`: write every corpus file from the table. The genuine
/// ISCAS-85 members are written verbatim (classic pragma-free text);
/// generator circuits go through `write_bench`, embedding their delay
/// pragmas.
fn regen(dir: &Path, entries: &[Entry]) -> Result<(), String> {
    for entry in entries {
        let path = corpus_path(dir, entry);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).map_err(|e| format!("{}: {e}", parent.display()))?;
        }
        let text = if entry.name == "c17" {
            C17_BENCH.to_owned()
        } else {
            match entry.format {
                Format::Blif => write_blif(&entry.netlist, entry.name),
                _ => write_bench(&entry.netlist),
            }
            .map_err(|e| format!("{}: {e}", entry.name))?
        };
        std::fs::write(&path, text).map_err(|e| format!("{}: {e}", path.display()))?;
        eprintln!("bench_corpus: wrote {}", path.display());
    }
    Ok(())
}

/// Measurement mode: every committed file must parse back to the
/// generator's exact structure before it is measured.
fn check_committed(dir: &Path, entry: &Entry) -> Result<(), String> {
    let path = corpus_path(dir, entry);
    let parsed = load_netlist(&path, mcnc_like_delays)
        .map_err(|e| format!("{}: {e} (run `bench_corpus --regen`?)", path.display()))?;
    if parsed.structural_signature() != entry.netlist.structural_signature() {
        return Err(format!(
            "{}: committed file diverged from the generator table — run `bench_corpus --regen`",
            path.display()
        ));
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let mut out = "BENCH_corpus.json".to_owned();
    let mut reps: u32 = 3;
    let mut dir = PathBuf::from("benchmarks");
    let mut do_regen = false;
    let mut positional = 0;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--regen" => do_regen = true,
            "--corpus" => {
                dir = PathBuf::from(it.next().ok_or("missing value for --corpus")?);
            }
            "--help" | "-h" => {
                return Err(
                    "usage: bench_corpus [OUT.json] [REPS] [--corpus DIR] [--regen]".to_owned(),
                )
            }
            other if other.starts_with("--") => return Err(format!("unknown flag {other}")),
            other => {
                match positional {
                    0 => out = other.to_owned(),
                    1 => reps = other.parse().map_err(|e| format!("REPS: {e}"))?,
                    _ => return Err(format!("unexpected argument {other}")),
                }
                positional += 1;
            }
        }
    }

    let entries = corpus();
    if do_regen {
        return regen(&dir, &entries);
    }

    let mut rows = Vec::new();
    for entry in &entries {
        check_committed(&dir, entry)?;
        eprintln!("bench_corpus: {} ({})", entry.name, entry.tier);
        rows.push(measure_row(entry, reps)?);
    }
    let configs = CONFIGS
        .iter()
        .map(|(name, threads, pressure, ce, gc)| {
            Value::Obj(vec![
                ("name".to_owned(), Value::str(*name)),
                ("threads".to_owned(), Value::u64(*threads as u64)),
                (
                    "reorder".to_owned(),
                    Value::str(if *pressure { "pressure" } else { "off" }),
                ),
                ("complement_edges".to_owned(), Value::Bool(*ce)),
                ("gc".to_owned(), Value::Bool(*gc)),
            ])
        })
        .collect();
    let artifact = Value::Obj(vec![
        ("schema".to_owned(), Value::str(SCHEMA)),
        ("schema_version".to_owned(), Value::u64(SCHEMA_VERSION)),
        ("model".to_owned(), Value::str("anytime-exact")),
        ("delays".to_owned(), Value::str("pragma-or-mcnc")),
        ("reps".to_owned(), Value::u64(u64::from(reps))),
        ("configs".to_owned(), Value::Arr(configs)),
        ("rows".to_owned(), Value::Arr(rows)),
    ]);
    std::fs::write(&out, artifact.to_pretty() + "\n").map_err(|e| format!("{out}: {e}"))?;
    eprintln!("bench_corpus: wrote {out}");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bench_corpus: {e}");
            ExitCode::FAILURE
        }
    }
}
