//! End-to-end checks of `tbf --emit-metrics`: the run artifact is
//! schema-valid and its deterministic sections are byte-identical across
//! `--threads {1,2,8}` × `--reorder {off,pressure}` on c17.

#![cfg(feature = "obs")]

use std::path::PathBuf;
use std::process::Command;

use tbf_obs::json::Value;
use tbf_obs::RunArtifact;

fn c17() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../benchmarks/c17.bench")
}

/// Runs `tbf --emit-metrics - <extra> c17.bench` and returns the parsed,
/// validated artifact document.
fn run_artifact(extra: &[&str]) -> Value {
    let out = Command::new(env!("CARGO_BIN_EXE_tbf"))
        .arg("--emit-metrics")
        .arg("-")
        .args(extra)
        .arg(c17())
        .output()
        .expect("tbf runs");
    assert!(
        out.status.success(),
        "tbf failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf-8 artifact");
    RunArtifact::validate(&stdout).expect("schema-valid artifact")
}

/// The comparable serialization: everything except the volatile
/// `timing` section and the `policy` echo of the varied flags.
fn deterministic_without_policy(doc: &Value) -> String {
    match RunArtifact::deterministic_view(doc) {
        Value::Obj(pairs) => {
            Value::Obj(pairs.into_iter().filter(|(k, _)| k != "policy").collect()).to_string()
        }
        other => other.to_string(),
    }
}

#[test]
fn artifact_is_schema_valid_with_all_sections() {
    let doc = run_artifact(&[]);
    for section in [
        "circuit",
        "policy",
        "results",
        "counters",
        "histograms",
        "phases",
        "timing",
    ] {
        assert!(doc.get(section).is_some(), "missing section `{section}`");
    }
    // The timing section must serialize last.
    let keys: Vec<&String> = doc
        .as_object()
        .expect("object")
        .iter()
        .map(|(k, _)| k)
        .collect();
    assert_eq!(keys.last().map(|s| s.as_str()), Some("timing"));
    // BDD work actually happened and was counted.
    let ite = doc
        .get("counters")
        .and_then(|c| c.get("ite_calls"))
        .and_then(Value::as_u64)
        .expect("ite_calls counter");
    assert!(ite > 0, "c17 analysis must execute ITE calls");
    let gates = doc
        .get("circuit")
        .and_then(|c| c.get("gates"))
        .and_then(Value::as_u64);
    assert_eq!(gates, Some(6));
}

#[test]
fn deterministic_sections_identical_across_threads_and_reorder() {
    // model=anytime exercises the worker pool; the default model ignores
    // --threads entirely.
    for model in ["all", "anytime"] {
        let baseline =
            deterministic_without_policy(&run_artifact(&["--model", model, "--threads", "1"]));
        for threads in ["1", "2", "8"] {
            for reorder in ["off", "pressure"] {
                let doc =
                    run_artifact(&["--model", model, "--threads", threads, "--reorder", reorder]);
                assert_eq!(
                    deterministic_without_policy(&doc),
                    baseline,
                    "model={model} threads={threads} reorder={reorder}"
                );
            }
        }
    }
}

#[test]
fn streaming_to_stdout_keeps_stdout_pure_json() {
    let out = Command::new(env!("CARGO_BIN_EXE_tbf"))
        .args(["--emit-metrics", "-", "--per-output"])
        .arg(c17())
        .output()
        .expect("tbf runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf-8");
    // No human report lines before or after the document.
    assert!(
        stdout.trim_start().starts_with('{'),
        "stdout must be JSON only"
    );
    RunArtifact::validate(&stdout).expect("stdout parses as one artifact");
    // Diagnostics are quieted too.
    assert!(out.stderr.is_empty(), "streaming implies --quiet");
}

#[test]
fn quiet_flag_suppresses_diagnostics_only() {
    // A blown cap makes the two-vector model emit a diagnostic; --quiet
    // must silence stderr while the human stdout report stays.
    let loud = Command::new(env!("CARGO_BIN_EXE_tbf"))
        .args(["--model", "two-vector", "--max-paths", "1"])
        .arg(c17())
        .output()
        .expect("tbf runs");
    assert!(!loud.stderr.is_empty(), "cap overflow should be diagnosed");
    let quiet = Command::new(env!("CARGO_BIN_EXE_tbf"))
        .args(["--model", "two-vector", "--max-paths", "1", "--quiet"])
        .arg(c17())
        .output()
        .expect("tbf runs");
    assert!(quiet.stderr.is_empty(), "--quiet must silence diagnostics");
    assert!(!quiet.stdout.is_empty(), "--quiet keeps the report");
}

#[test]
fn emit_to_file_writes_the_same_artifact() {
    let dir = std::env::temp_dir().join(format!("tbf-artifact-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("c17.json");
    let out = Command::new(env!("CARGO_BIN_EXE_tbf"))
        .arg("--emit-metrics")
        .arg(&path)
        .arg(c17())
        .output()
        .expect("tbf runs");
    assert!(out.status.success());
    let text = std::fs::read_to_string(&path).expect("artifact written");
    let doc = RunArtifact::validate(&text).expect("schema-valid");
    let streamed = run_artifact(&[]);
    assert_eq!(
        deterministic_without_policy(&doc),
        deterministic_without_policy(&streamed),
        "file and stream artifacts agree on deterministic sections"
    );
    std::fs::remove_dir_all(&dir).ok();
}
