//! Microbench: full exact-delay computation per benchmark circuit —
//! the runtime column of the §12 table as a tracked regression metric.

use tbf_bench::harness::{bench, section};
use tbf_core::{sequences_delay, two_vector_delay, DelayOptions};
use tbf_logic::generators::adders::{carry_bypass, ripple_carry};
use tbf_logic::generators::trees::parity_tree;
use tbf_logic::generators::unit_ninety_percent;
use tbf_logic::parsers::bench::c17;
use tbf_logic::parsers::mcnc_like_delays;

fn main() {
    let opts = DelayOptions::default();

    section("two_vector_delay");
    let circuits = [
        ("c17", c17(mcnc_like_delays)),
        ("rca8", ripple_carry(8, unit_ninety_percent())),
        ("bypass4x2", carry_bypass(4, 2, unit_ninety_percent())),
        ("bypass4x4", carry_bypass(4, 4, unit_ninety_percent())),
        ("parity16", parity_tree(16, unit_ninety_percent())),
    ];
    for (name, n) in &circuits {
        bench(&format!("two_vector_delay/{name}"), || {
            two_vector_delay(n, &opts).unwrap().delay
        });
    }

    section("sequences_delay");
    for (name, n) in &circuits {
        if *name == "bypass4x2" {
            continue; // same coverage as 4x4; keep parity with the old suite
        }
        bench(&format!("sequences_delay/{name}"), || {
            sequences_delay(n, &opts).unwrap().delay
        });
    }
}
