//! Criterion bench: full exact-delay computation per benchmark circuit —
//! the runtime column of the §12 table as a tracked regression metric.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use tbf_core::{sequences_delay, two_vector_delay, DelayOptions};
use tbf_logic::generators::adders::{carry_bypass, ripple_carry};
use tbf_logic::generators::trees::parity_tree;
use tbf_logic::generators::unit_ninety_percent;
use tbf_logic::parsers::bench::c17;
use tbf_logic::parsers::mcnc_like_delays;

fn bench_two_vector(c: &mut Criterion) {
    let opts = DelayOptions::default();
    let mut group = c.benchmark_group("two_vector_delay");
    group.sample_size(10);
    let circuits = [
        ("c17", c17(mcnc_like_delays)),
        ("rca8", ripple_carry(8, unit_ninety_percent())),
        ("bypass4x2", carry_bypass(4, 2, unit_ninety_percent())),
        ("bypass4x4", carry_bypass(4, 4, unit_ninety_percent())),
        ("parity16", parity_tree(16, unit_ninety_percent())),
    ];
    for (name, n) in &circuits {
        group.bench_function(*name, |b| {
            b.iter(|| two_vector_delay(black_box(n), &opts).unwrap().delay)
        });
    }
    group.finish();
}

fn bench_sequences(c: &mut Criterion) {
    let opts = DelayOptions::default();
    let mut group = c.benchmark_group("sequences_delay");
    group.sample_size(10);
    let circuits = [
        ("c17", c17(mcnc_like_delays)),
        ("rca8", ripple_carry(8, unit_ninety_percent())),
        ("bypass4x4", carry_bypass(4, 4, unit_ninety_percent())),
        ("parity16", parity_tree(16, unit_ninety_percent())),
    ];
    for (name, n) in &circuits {
        group.bench_function(*name, |b| {
            b.iter(|| sequences_delay(black_box(n), &opts).unwrap().delay)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_two_vector, bench_sequences);
criterion_main!(benches);
