//! Criterion bench: the breakpoint search and straddling-path
//! enumeration primitives that drive the descending-`t` loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use tbf_logic::generators::adders::carry_bypass;
use tbf_logic::generators::random::random_dag;
use tbf_logic::generators::unit_ninety_percent;
use tbf_logic::paths::{next_breakpoint, straddling_paths};
use tbf_logic::Time;

fn bench_next_breakpoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("next_breakpoint");
    for gates in [100usize, 300, 1000] {
        let n = random_dag(16, gates, 4, 7);
        let out = n.outputs()[0].1;
        group.bench_with_input(BenchmarkId::from_parameter(gates), &n, |b, n| {
            b.iter(|| next_breakpoint(black_box(n), out, Time::MAX))
        });
    }
    group.finish();
}

fn bench_breakpoint_chain(c: &mut Criterion) {
    // Walking the whole descending chain exercises the memoized DP at
    // many residuals.
    let n = carry_bypass(4, 4, unit_ninety_percent());
    let out = n
        .outputs()
        .iter()
        .find(|(name, _)| name == "cout")
        .expect("bypass adder has a carry out")
        .1;
    c.bench_function("breakpoint_chain/bypass4x4_cout", |b| {
        b.iter(|| {
            let mut count = 0usize;
            let mut cur = Time::MAX;
            while let Some(next) = next_breakpoint(black_box(&n), out, cur) {
                cur = next;
                count += 1;
            }
            count
        })
    });
}

fn bench_straddling(c: &mut Criterion) {
    let n = carry_bypass(4, 4, unit_ninety_percent());
    let out = n
        .outputs()
        .iter()
        .find(|(name, _)| name == "cout")
        .expect("bypass adder has a carry out")
        .1;
    let top = next_breakpoint(&n, out, Time::MAX).expect("has paths");
    c.bench_function("straddling_paths/bypass4x4_at_top", |b| {
        b.iter(|| straddling_paths(black_box(&n), out, top, 100_000).unwrap().len())
    });
}

criterion_group!(
    benches,
    bench_next_breakpoint,
    bench_breakpoint_chain,
    bench_straddling
);
criterion_main!(benches);
