//! Microbench: the breakpoint search and straddling-path enumeration
//! primitives that drive the descending-`t` loop.

use tbf_bench::harness::{bench, section};
use tbf_logic::generators::adders::carry_bypass;
use tbf_logic::generators::random::random_dag;
use tbf_logic::generators::unit_ninety_percent;
use tbf_logic::paths::{next_breakpoint, straddling_paths};
use tbf_logic::Time;

fn main() {
    section("next_breakpoint on random DAGs");
    for gates in [100usize, 300, 1000] {
        let n = random_dag(16, gates, 4, 7);
        let out = n.outputs()[0].1;
        bench(&format!("next_breakpoint/{gates}"), || {
            next_breakpoint(&n, out, Time::MAX)
        });
    }

    // Walking the whole descending chain exercises the memoized DP at
    // many residuals.
    let n = carry_bypass(4, 4, unit_ninety_percent());
    let out = n
        .outputs()
        .iter()
        .find(|(name, _)| name == "cout")
        .expect("bypass adder has a carry out")
        .1;

    section("breakpoint chain + straddling");
    bench("breakpoint_chain/bypass4x4_cout", || {
        let mut count = 0usize;
        let mut cur = Time::MAX;
        while let Some(next) = next_breakpoint(&n, out, cur) {
            cur = next;
            count += 1;
        }
        count
    });
    let top = next_breakpoint(&n, out, Time::MAX).expect("has paths");
    bench("straddling_paths/bypass4x4_at_top", || {
        straddling_paths(&n, out, top, 100_000).unwrap().len()
    });
}
