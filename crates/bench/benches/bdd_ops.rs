//! Criterion bench: the BDD substrate under the workloads the delay
//! engines impose (static-function builds, XOR difference, quantified
//! projection).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use tbf_bdd::{Bdd, BddManager};

/// Builds the n-bit adder carry chain over interleaved variables — the
/// canonical linear-sized BDD workload.
fn adder_carry(m: &mut BddManager, bits: usize) -> Bdd {
    let mut carry = Bdd::FALSE;
    for _ in 0..bits {
        let a = m.new_var();
        let b = m.new_var();
        let (va, vb) = (m.var(a), m.var(b));
        let ab = m.and(va, vb);
        let axb = m.or(va, vb);
        let t = m.and(axb, carry);
        carry = m.or(ab, t);
    }
    carry
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("bdd/adder_carry_build");
    for bits in [8usize, 16, 32, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, &bits| {
            b.iter(|| {
                let mut m = BddManager::new();
                let f = adder_carry(&mut m, black_box(bits));
                (f, m.node_count())
            })
        });
    }
    group.finish();
}

fn bench_xor_and_project(c: &mut Criterion) {
    c.bench_function("bdd/xor_detect_difference", |b| {
        b.iter(|| {
            let mut m = BddManager::new();
            let f = adder_carry(&mut m, 16);
            // A second chain over fresh variables: a genuinely different
            // function, like TBF-vs-static comparisons.
            let g = adder_carry(&mut m, 16);
            let x = m.xor(f, g);
            x.is_false()
        })
    });
    c.bench_function("bdd/exists_projection", |b| {
        b.iter(|| {
            let mut m = BddManager::new();
            let f = adder_carry(&mut m, 12);
            let support = m.support(f);
            let half: Vec<_> = support.iter().copied().step_by(2).collect();
            let projected = m.exists_all(f, &half);
            m.size(projected)
        })
    });
    c.bench_function("bdd/cube_enumeration", |b| {
        b.iter(|| {
            let mut m = BddManager::new();
            let f = adder_carry(&mut m, 10);
            m.cubes(f).count()
        })
    });
}

criterion_group!(benches, bench_build, bench_xor_and_project);
criterion_main!(benches);
