//! Microbench: the BDD substrate under the workloads the delay engines
//! impose (static-function builds, XOR difference, quantified
//! projection).

use tbf_bdd::{Bdd, BddManager};
use tbf_bench::harness::{bench, section};

/// Builds the n-bit adder carry chain over interleaved variables — the
/// canonical linear-sized BDD workload.
fn adder_carry(m: &mut BddManager, bits: usize) -> Bdd {
    let mut carry = Bdd::FALSE;
    for _ in 0..bits {
        let a = m.new_var();
        let b = m.new_var();
        let (va, vb) = (m.var(a), m.var(b));
        let ab = m.and(va, vb);
        let axb = m.or(va, vb);
        let t = m.and(axb, carry);
        carry = m.or(ab, t);
    }
    carry
}

fn main() {
    section("adder carry build");
    for bits in [8usize, 16, 32, 64] {
        bench(&format!("bdd/adder_carry_build/{bits}"), || {
            let mut m = BddManager::new();
            let f = adder_carry(&mut m, bits);
            (f, m.node_count())
        });
    }

    section("xor / projection / cubes");
    bench("bdd/xor_detect_difference", || {
        let mut m = BddManager::new();
        let f = adder_carry(&mut m, 16);
        // A second chain over fresh variables: a genuinely different
        // function, like TBF-vs-static comparisons.
        let g = adder_carry(&mut m, 16);
        let x = m.xor(f, g);
        x.is_false()
    });
    bench("bdd/exists_projection", || {
        let mut m = BddManager::new();
        let f = adder_carry(&mut m, 12);
        let support = m.support(f);
        let half: Vec<_> = support.iter().copied().step_by(2).collect();
        let projected = m.exists_all(f, &half);
        m.size(projected)
    });
    bench("bdd/cube_enumeration", || {
        let mut m = BddManager::new();
        let f = adder_carry(&mut m, 10);
        m.cubes(f).count()
    });
}
