//! Microbench: dynamic variable reordering on bypass adders — wall time
//! per reorder policy, plus a one-shot table of peak arena size and live
//! nodes before/after sifting. The live before/after series over growing
//! adder width feeds the EXPERIMENTS.md `EXP-ORD` table.

use tbf_bdd::{Bdd, BddManager};
use tbf_bench::harness::{bench, section};
use tbf_core::{analyze, AnalysisPolicy, DelayOptions, ReorderPolicy};
use tbf_logic::generators::adders::{carry_bypass, paper_bypass_adder};
use tbf_logic::generators::unit_ninety_percent;
use tbf_logic::{GateKind, Netlist};

fn policy(reorder: ReorderPolicy) -> AnalysisPolicy {
    AnalysisPolicy::with_options(DelayOptions {
        reorder,
        ..DelayOptions::default()
    })
}

fn cells() -> [(&'static str, ReorderPolicy); 3] {
    [
        ("off", ReorderPolicy::None),
        ("manual", ReorderPolicy::Manual),
        (
            "pressure",
            ReorderPolicy::OnPressure {
                trigger_nodes: 4096,
                max_growth: 150,
            },
        ),
    ]
}

fn one_shot(label: &str, netlist: &Netlist, reorder: ReorderPolicy) {
    let r = analyze(netlist, &policy(reorder));
    let (before, after) = (r.stats.reorder_nodes_before, r.stats.reorder_nodes_after);
    let ratio = if after > 0 {
        format!("{:.2}", before as f64 / after as f64)
    } else {
        "-".into()
    };
    println!(
        "  {label}: peak {} nodes, {} sifts, live {before} -> {after} ({ratio}x), {} ms sifting",
        r.stats.peak_bdd_nodes, r.stats.reorders, r.stats.reorder_time_ms
    );
}

/// Builds the combinational output BDDs of `netlist` with one variable
/// per primary input in *declaration order*. For the adder generators
/// that is operand-major (all a's, then all b's) — the classic bad
/// order for a carry chain, which has to remember every a-bit until the
/// matching b-bit arrives. (The delay engines are immune: their layout
/// interleaves variables in fanin-DFS order.)
fn declaration_order_bdds(m: &mut BddManager, netlist: &Netlist) -> Vec<Bdd> {
    let mut of: Vec<Bdd> = Vec::with_capacity(netlist.len());
    for (_, node) in netlist.nodes() {
        let f = match node.kind() {
            GateKind::Input => {
                let v = m.new_var();
                m.var(v)
            }
            kind => {
                let ins: Vec<Bdd> = node.fanins().iter().map(|&x| of[x.index()]).collect();
                match kind {
                    GateKind::And => m.and_all(ins),
                    GateKind::Or => m.or_all(ins),
                    GateKind::Nand => {
                        let t = m.and_all(ins);
                        m.not(t)
                    }
                    GateKind::Nor => {
                        let t = m.or_all(ins);
                        m.not(t)
                    }
                    GateKind::Xor => ins.into_iter().fold(Bdd::FALSE, |a, b| m.xor(a, b)),
                    GateKind::Xnor => {
                        let t = ins.into_iter().fold(Bdd::FALSE, |a, b| m.xor(a, b));
                        m.not(t)
                    }
                    GateKind::Not => m.not(ins[0]),
                    GateKind::Buf => ins[0],
                    GateKind::Maj => {
                        let ab = m.and(ins[0], ins[1]);
                        let bc = m.and(ins[1], ins[2]);
                        let ac = m.and(ins[0], ins[2]);
                        let t = m.or(ab, bc);
                        m.or(t, ac)
                    }
                    GateKind::Mux => m.ite(ins[0], ins[2], ins[1]),
                    GateKind::Const0 => Bdd::FALSE,
                    GateKind::Const1 => Bdd::TRUE,
                    GateKind::Input => unreachable!("matched above"),
                }
            }
        };
        of.push(f);
    }
    netlist
        .outputs()
        .iter()
        .map(|(_, id)| of[id.index()])
        .collect()
}

/// Sifts `roots` in bounded passes until the live size stops shrinking,
/// returning the live size before the first and after the last pass.
fn sift_to_convergence(m: &mut BddManager, roots: &[Bdd]) -> (usize, usize) {
    let before = m.live_size(roots);
    let mut best = before;
    loop {
        let abort = m.sift_abort_bound(roots);
        let (_, after) = m.sift(roots, 150, abort);
        if after >= best {
            return (before, best.min(after));
        }
        best = after;
    }
}

fn main() {
    let paper = paper_bypass_adder();
    section("paper bypass adder (Fig. 10): wall time per policy");
    for (label, reorder) in cells() {
        let p = policy(reorder);
        bench(&format!("reorder/paper_bypass/{label}"), || {
            analyze(&paper, &p).upper
        });
    }

    let wide = carry_bypass(4, 3, unit_ninety_percent());
    section("carry_bypass 4x3: wall time per policy");
    for (label, reorder) in cells() {
        let p = policy(reorder);
        bench(&format!("reorder/bypass_4x3/{label}"), || {
            analyze(&wide, &p).upper
        });
    }

    section("peak arena and sifting effort (one analysis each)");
    for (label, reorder) in cells() {
        one_shot(&format!("bypass_4x3/{label}"), &wide, reorder);
    }

    // EXP-ORD part 1: the delay engines' own fanin-DFS interleaved
    // layout is already close to optimal for adders, so in-engine
    // sifting buys representation headroom, not big wins — record that
    // honestly.
    section("EXP-ORD: in-engine manual sifting (fanin-DFS start order)");
    for width in [2usize, 4, 6, 8] {
        let n = carry_bypass(width, 2, unit_ninety_percent());
        one_shot(
            &format!("bypass_{width}x2/manual"),
            &n,
            ReorderPolicy::Manual,
        );
    }

    // EXP-ORD part 2: the same adders from the operand-major netlist
    // declaration order, the classic bad order for a carry chain — this
    // is where sifting recovers the interleaved order and the live size
    // collapses, increasingly so with width. (Width 10 is deliberately
    // absent: its declaration-order build alone needs ~2^20 nodes.)
    section("EXP-ORD: sifting declaration-order BDDs of growing width");
    for width in [4usize, 6, 8] {
        let n = carry_bypass(width, 2, unit_ninety_percent());
        let mut m = BddManager::new();
        let roots = declaration_order_bdds(&mut m, &n);
        let (before, after) = sift_to_convergence(&mut m, &roots);
        println!(
            "  bypass_{width}x2 declaration order: live {before} -> {after} ({:.2}x)",
            before as f64 / after as f64
        );
    }
}
