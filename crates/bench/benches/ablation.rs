//! Ablation benches for the design choices called out in `DESIGN.md`:
//!
//! 1. **Breakpoint search**: memoized branch-and-bound `next_breakpoint`
//!    vs. the naive alternative (enumerate all paths, sort the lengths).
//! 2. **Straddling-path discovery**: arrival-bound-pruned DFS vs.
//!    filtering the full path set.
//! 3. **LP arithmetic**: exact-rational simplex vs. `f64` simplex on the
//!    induced path LPs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use tbf_logic::generators::adders::carry_bypass;
use tbf_logic::generators::unit_ninety_percent;
use tbf_logic::paths::{all_paths, next_breakpoint, straddling_paths};
use tbf_logic::Time;
use tbf_lp::{solve, LpOutcome, LpProblem, PathLp, PathLpOutcome, Rat, Relation};

fn cout_of(n: &tbf_logic::Netlist) -> tbf_logic::NodeId {
    n.outputs()
        .iter()
        .find(|(name, _)| name == "cout")
        .expect("adders expose cout")
        .1
}

fn ablation_breakpoints(c: &mut Criterion) {
    // 4x3 keeps the naive variant finishable (path counts are modest).
    let n = carry_bypass(4, 3, unit_ninety_percent());
    let out = cout_of(&n);
    let mut group = c.benchmark_group("ablation/next_breakpoint");
    group.bench_function("pruned_memoized", |b| {
        b.iter(|| {
            let top = next_breakpoint(black_box(&n), out, Time::MAX).unwrap();
            next_breakpoint(black_box(&n), out, top)
        })
    });
    group.bench_function("naive_full_enumeration", |b| {
        b.iter(|| {
            let mut lens: Vec<Time> = all_paths(black_box(&n), out, 1_000_000)
                .unwrap()
                .iter()
                .map(|p| p.length_max(&n))
                .collect();
            lens.sort_unstable();
            lens.dedup();
            lens.pop(); // drop the top; the next-to-top is the answer
            lens.last().copied()
        })
    });
    group.finish();
}

fn ablation_straddling(c: &mut Criterion) {
    let n = carry_bypass(4, 3, unit_ninety_percent());
    let out = cout_of(&n);
    let top = next_breakpoint(&n, out, Time::MAX).unwrap();
    let mut group = c.benchmark_group("ablation/straddling_paths");
    group.bench_function("pruned_dfs", |b| {
        b.iter(|| straddling_paths(black_box(&n), out, top, 1_000_000).unwrap().len())
    });
    group.bench_function("filter_all_paths", |b| {
        b.iter(|| {
            all_paths(black_box(&n), out, 1_000_000)
                .unwrap()
                .iter()
                .filter(|p| p.straddles(&n, top))
                .count()
        })
    });
    group.finish();
}

fn ablation_lp_arithmetic(c: &mut Criterion) {
    // The §11 LP in both arithmetics.
    let bounds: Vec<(i64, i64)> = std::iter::once((2i64, 20i64))
        .chain(std::iter::repeat_n((2i64, 4i64), 5))
        .collect();
    let mut group = c.benchmark_group("ablation/lp_arithmetic");
    group.bench_function("exact_rational", |b| {
        b.iter(|| {
            let mut lp = PathLp::new(black_box(&bounds));
            lp.t_less_than(&[0, 5]);
            lp.t_less_than(&[0, 1, 2, 3, 4, 5]);
            match lp.solve() {
                PathLpOutcome::Feasible { t_sup, .. } => t_sup,
                PathLpOutcome::Infeasible => unreachable!(),
            }
        })
    });
    group.bench_function("f64", |b| {
        b.iter(|| {
            let mut p: LpProblem<f64> = LpProblem::new();
            let t = p.add_var(Some(0.0), None);
            let ds: Vec<_> = black_box(&bounds)
                .iter()
                .map(|&(lo, hi)| p.add_var(Some(lo as f64), Some(hi as f64)))
                .collect();
            p.set_objective(t, 1.0);
            for gates in [&[0usize, 5][..], &[0, 1, 2, 3, 4, 5][..]] {
                let mut terms = vec![(t, 1.0)];
                for &g in gates {
                    terms.push((ds[g], -1.0));
                }
                p.add_constraint(terms, Relation::Le, 0.0);
            }
            match solve(&p) {
                LpOutcome::Optimal { value, .. } => value,
                other => panic!("unexpected {other:?}"),
            }
        })
    });
    group.bench_function("rational_general_simplex", |b| {
        b.iter(|| {
            let mut p: LpProblem<Rat> = LpProblem::new();
            let t = p.add_var(Some(Rat::ZERO), None);
            let ds: Vec<_> = black_box(&bounds)
                .iter()
                .map(|&(lo, hi)| {
                    p.add_var(Some(Rat::from_int(lo as i128)), Some(Rat::from_int(hi as i128)))
                })
                .collect();
            p.set_objective(t, Rat::ONE);
            for gates in [&[0usize, 5][..], &[0, 1, 2, 3, 4, 5][..]] {
                let mut terms = vec![(t, Rat::ONE)];
                for &g in gates {
                    terms.push((ds[g], -Rat::ONE));
                }
                p.add_constraint(terms, Relation::Le, Rat::ZERO);
            }
            match solve(&p) {
                LpOutcome::Optimal { value, .. } => value,
                other => panic!("unexpected {other:?}"),
            }
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    ablation_breakpoints,
    ablation_straddling,
    ablation_lp_arithmetic
);
criterion_main!(benches);
