//! Ablation benches for the design choices called out in `DESIGN.md`:
//!
//! 1. **Breakpoint search**: memoized branch-and-bound `next_breakpoint`
//!    vs. the naive alternative (enumerate all paths, sort the lengths).
//! 2. **Straddling-path discovery**: arrival-bound-pruned DFS vs.
//!    filtering the full path set.
//! 3. **LP arithmetic**: exact-rational simplex vs. `f64` simplex on the
//!    induced path LPs.

use tbf_bench::harness::{bench, section};
use tbf_logic::generators::adders::carry_bypass;
use tbf_logic::generators::unit_ninety_percent;
use tbf_logic::paths::{all_paths, next_breakpoint, straddling_paths};
use tbf_logic::Time;
use tbf_lp::{solve, LpOutcome, LpProblem, PathLp, PathLpOutcome, Rat, Relation};

fn cout_of(n: &tbf_logic::Netlist) -> tbf_logic::NodeId {
    n.outputs()
        .iter()
        .find(|(name, _)| name == "cout")
        .expect("adders expose cout")
        .1
}

fn main() {
    // 4x3 keeps the naive variant finishable (path counts are modest).
    let n = carry_bypass(4, 3, unit_ninety_percent());
    let out = cout_of(&n);

    section("ablation: next_breakpoint");
    bench("ablation/next_breakpoint/pruned_memoized", || {
        let top = next_breakpoint(&n, out, Time::MAX).unwrap();
        next_breakpoint(&n, out, top)
    });
    bench("ablation/next_breakpoint/naive_full_enumeration", || {
        let mut lens: Vec<Time> = all_paths(&n, out, 1_000_000)
            .unwrap()
            .iter()
            .map(|p| p.length_max(&n))
            .collect();
        lens.sort_unstable();
        lens.dedup();
        lens.pop(); // drop the top; the next-to-top is the answer
        lens.last().copied()
    });

    section("ablation: straddling_paths");
    let top = next_breakpoint(&n, out, Time::MAX).unwrap();
    bench("ablation/straddling_paths/pruned_dfs", || {
        straddling_paths(&n, out, top, 1_000_000).unwrap().len()
    });
    bench("ablation/straddling_paths/filter_all_paths", || {
        all_paths(&n, out, 1_000_000)
            .unwrap()
            .iter()
            .filter(|p| p.straddles(&n, top))
            .count()
    });

    section("ablation: LP arithmetic");
    // The §11 LP in both arithmetics.
    let bounds: Vec<(i64, i64)> = std::iter::once((2i64, 20i64))
        .chain(std::iter::repeat_n((2i64, 4i64), 5))
        .collect();
    bench("ablation/lp_arithmetic/exact_rational", || {
        let mut lp = PathLp::new(&bounds);
        lp.t_less_than(&[0, 5]);
        lp.t_less_than(&[0, 1, 2, 3, 4, 5]);
        match lp.solve() {
            PathLpOutcome::Feasible { t_sup, .. } => t_sup,
            PathLpOutcome::Infeasible => unreachable!(),
        }
    });
    bench("ablation/lp_arithmetic/f64", || {
        let mut p: LpProblem<f64> = LpProblem::new();
        let t = p.add_var(Some(0.0), None);
        let ds: Vec<_> = bounds
            .iter()
            .map(|&(lo, hi)| p.add_var(Some(lo as f64), Some(hi as f64)))
            .collect();
        p.set_objective(t, 1.0);
        for gates in [&[0usize, 5][..], &[0, 1, 2, 3, 4, 5][..]] {
            let mut terms = vec![(t, 1.0)];
            for &g in gates {
                terms.push((ds[g], -1.0));
            }
            p.add_constraint(terms, Relation::Le, 0.0);
        }
        match solve(&p) {
            LpOutcome::Optimal { value, .. } => value,
            other => panic!("unexpected {other:?}"),
        }
    });
    bench("ablation/lp_arithmetic/rational_general_simplex", || {
        let mut p: LpProblem<Rat> = LpProblem::new();
        let t = p.add_var(Some(Rat::ZERO), None);
        let ds: Vec<_> = bounds
            .iter()
            .map(|&(lo, hi)| {
                p.add_var(
                    Some(Rat::from_int(lo as i128)),
                    Some(Rat::from_int(hi as i128)),
                )
            })
            .collect();
        p.set_objective(t, Rat::ONE);
        for gates in [&[0usize, 5][..], &[0, 1, 2, 3, 4, 5][..]] {
            let mut terms = vec![(t, Rat::ONE)];
            for &g in gates {
                terms.push((ds[g], -Rat::ONE));
            }
            p.add_constraint(terms, Relation::Le, Rat::ZERO);
        }
        match solve(&p) {
            LpOutcome::Optimal { value, .. } => value,
            other => panic!("unexpected {other:?}"),
        }
    });
}
