//! Microbench: the paper's §11 bypass adder pipeline, stage by stage,
//! plus the scaling series over block counts — tracks where the
//! exact-delay time goes (breakpoints vs TBF build vs LP).

use tbf_bench::harness::{bench, section};
use tbf_core::{two_vector_delay, DelayOptions};
use tbf_logic::generators::adders::{carry_bypass, paper_bypass_adder};
use tbf_logic::generators::unit_ninety_percent;
use tbf_logic::paths::{next_breakpoint, straddling_paths};
use tbf_logic::Time;
use tbf_lp::{PathLp, PathLpOutcome};

fn main() {
    let n = paper_bypass_adder();
    let opts = DelayOptions::default();

    section("paper bypass adder");
    bench("bypass/full_exact_delay", || {
        two_vector_delay(&n, &opts).unwrap().delay
    });
    let out = n.outputs()[0].1;
    bench("bypass/next_breakpoint", || {
        next_breakpoint(&n, out, Time::MAX)
    });
    bench("bypass/straddling_paths_at_24", || {
        straddling_paths(&n, out, Time::from_int(24), 1000).unwrap()
    });
    bench("bypass/induced_lp", || {
        let mut bounds = vec![(2i64, 20i64)];
        bounds.extend(std::iter::repeat_n((2i64, 4i64), 5));
        let mut lp = PathLp::new(&bounds);
        lp.t_less_than(&[0, 5]);
        lp.t_less_than(&[0, 1, 2, 3, 4, 5]);
        match lp.solve() {
            PathLpOutcome::Feasible { t_sup, .. } => t_sup,
            PathLpOutcome::Infeasible => unreachable!(),
        }
    });

    section("scaling over bypass blocks");
    for blocks in [1usize, 2, 3, 4] {
        let n = carry_bypass(4, blocks, unit_ninety_percent());
        bench(&format!("bypass/scaling_blocks/{blocks}"), || {
            two_vector_delay(&n, &opts).unwrap().delay
        });
    }
}
