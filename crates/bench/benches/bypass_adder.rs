//! Criterion bench: the paper's §11 bypass adder pipeline, stage by
//! stage, plus the scaling series over block counts — tracks where the
//! exact-delay time goes (breakpoints vs TBF build vs LP).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use tbf_core::{two_vector_delay, DelayOptions};
use tbf_logic::generators::adders::{carry_bypass, paper_bypass_adder};
use tbf_logic::generators::unit_ninety_percent;
use tbf_logic::paths::{next_breakpoint, straddling_paths};
use tbf_logic::Time;
use tbf_lp::{PathLp, PathLpOutcome};

fn bench_paper_adder(c: &mut Criterion) {
    let n = paper_bypass_adder();
    let opts = DelayOptions::default();
    c.bench_function("bypass/full_exact_delay", |b| {
        b.iter(|| two_vector_delay(black_box(&n), &opts).unwrap().delay)
    });
    let out = n.outputs()[0].1;
    c.bench_function("bypass/next_breakpoint", |b| {
        b.iter(|| next_breakpoint(black_box(&n), out, Time::MAX))
    });
    c.bench_function("bypass/straddling_paths_at_24", |b| {
        b.iter(|| straddling_paths(black_box(&n), out, Time::from_int(24), 1000).unwrap())
    });
    c.bench_function("bypass/induced_lp", |b| {
        b.iter(|| {
            let mut bounds = vec![(2i64, 20i64)];
            bounds.extend(std::iter::repeat_n((2i64, 4i64), 5));
            let mut lp = PathLp::new(&bounds);
            lp.t_less_than(&[0, 5]);
            lp.t_less_than(&[0, 1, 2, 3, 4, 5]);
            match lp.solve() {
                PathLpOutcome::Feasible { t_sup, .. } => t_sup,
                PathLpOutcome::Infeasible => unreachable!(),
            }
        })
    });
}

fn bench_scaling(c: &mut Criterion) {
    let opts = DelayOptions::default();
    let mut group = c.benchmark_group("bypass/scaling_blocks");
    group.sample_size(10);
    for blocks in [1usize, 2, 3, 4] {
        let n = carry_bypass(4, blocks, unit_ninety_percent());
        group.bench_with_input(BenchmarkId::from_parameter(blocks), &n, |b, n| {
            b.iter(|| two_vector_delay(black_box(n), &opts).unwrap().delay)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_paper_adder, bench_scaling);
criterion_main!(benches);
