//! Sequential-vs-parallel wall-clock scaling of the anytime driver.
//!
//! Runs `analyze` over multi-output circuits (≥ 8 independent cones) at
//! 1, 2 and 4 worker threads and prints the per-setting latency plus the
//! speedup over the sequential baseline. On a single-core host the
//! speedup column stays ~1.0× (there is nothing to run the extra workers
//! on); the table is meant to be read from a multi-core runner.

use std::time::Instant;
use tbf_bench::harness::{bench, section};
use tbf_core::{analyze, AnalysisPolicy};
use tbf_logic::generators::adders::carry_bypass;
use tbf_logic::generators::random::random_dag;
use tbf_logic::generators::unit_ninety_percent;
use tbf_logic::{Netlist, Time};

/// Median-of-5 wall-clock for one `analyze` call at the given thread
/// count (single iterations: the driver is the unit of work here).
fn measure(netlist: &Netlist, threads: usize) -> f64 {
    let policy = AnalysisPolicy::default().with_threads(threads);
    let mut samples: Vec<f64> = (0..5)
        .map(|_| {
            let start = Instant::now();
            let r = analyze(netlist, &policy);
            assert!(r.upper >= r.lower);
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn scaling_table(label: &str, netlist: &Netlist) {
    section(label);
    println!(
        "  {} outputs, {} gates, topological delay {}",
        netlist.outputs().len(),
        netlist.gate_count(),
        netlist.topological_delay()
    );
    let base = measure(netlist, 1);
    println!("  threads=1  {:>10.3} ms   1.00x (baseline)", base * 1e3);
    for threads in [2usize, 4] {
        let t = measure(netlist, threads);
        println!(
            "  threads={threads}  {:>10.3} ms   {:.2}x",
            t * 1e3,
            base / t
        );
    }
}

fn main() {
    // 18 sink outputs on a wide random DAG: plenty of independent cones.
    let wide = random_dag(10, 80, 3, 5);
    scaling_table("parallel/random_dag_10x80", &wide);

    // The bypass-adder scaling series carries one heavy cone per block
    // output, so largest-first scheduling matters.
    let adder = carry_bypass(4, 4, unit_ninety_percent());
    scaling_table("parallel/carry_bypass_4x4", &adder);

    section("parallel/report_invariance");
    let sequential = analyze(&wide, &AnalysisPolicy::default());
    let parallel = analyze(&wide, &AnalysisPolicy::default().with_threads(4));
    assert_eq!(sequential, parallel, "threads must not change the report");
    println!("  threads=1 and threads=4 reports byte-identical: ok");

    // Keep the harness's per-call overhead visible alongside the tables.
    let tiny = carry_bypass(2, 2, unit_ninety_percent());
    bench("parallel/analyze_tiny_seq", || {
        analyze(&tiny, &AnalysisPolicy::default()).upper
    });
    bench("parallel/analyze_tiny_4t", || {
        analyze(&tiny, &AnalysisPolicy::default().with_threads(4)).upper
    });
    let _ = Time::ZERO;
}
