//! # tbf-lp — Linear programming for exact delay computation
//!
//! The mixed Boolean linear programs of the TBF paper (Lam/Brayton/
//! Sangiovanni-Vincentelli, UCB/ERL M93/6) reduce, once the Boolean part is
//! resolved to a cube, to small linear programs of the form
//!
//! ```text
//!   maximize t
//!   subject to   t < Σ_{i∈U} dᵢ        for each resolvent set to 0
//!                t > Σ_{i∈L} dᵢ        for each resolvent set to 1
//!                dᵢᵐⁱⁿ ≤ dᵢ ≤ dᵢᵐᵃˣ
//! ```
//!
//! This crate provides:
//!
//! * [`Rat`] — exact rational arithmetic over `i128`, so simplex pivots
//!   never suffer floating-point drift,
//! * [`LpProblem`] / [`solve`] — a general two-phase dense simplex over any
//!   [`LpField`] (both `f64` and [`Rat`]),
//! * [`PathLp`] — the specialized path-constraint program above, including
//!   the paper's strict-inequality semantics (the optimum is a supremum
//!   `t = b⁻`; strict feasibility is certified with an auxiliary ε-LP).
//!
//! # Example
//!
//! Example 3 of the paper (Figure 4): `max t` with `t > d₂`,
//! `t < d₁ + d₂`, `dᵢ ∈ [1,2]` has supremum `t = 4`.
//!
//! ```
//! use tbf_lp::{PathLp, PathLpOutcome};
//!
//! let mut lp = PathLp::new(&[(1, 2), (1, 2)]); // d1, d2 ∈ [1,2]
//! lp.t_greater_than(&[1]);    // t > d2
//! lp.t_less_than(&[0, 1]);    // t < d1 + d2
//! match lp.solve() {
//!     PathLpOutcome::Feasible { t_sup, .. } => assert_eq!(t_sup, 4),
//!     PathLpOutcome::Infeasible => unreachable!(),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod field;
mod path_lp;
mod problem;
mod rational;
mod simplex;

pub use field::LpField;
pub use path_lp::{PathLp, PathLpOutcome};
pub use problem::{Constraint, LpProblem, Relation, VarId};
pub use rational::Rat;
pub use simplex::{solve, LpOutcome};
