//! The specialized linear program induced by a cube of the XOR BDD in the
//! exact-delay search (paper §5–§7).
//!
//! Variables are the arrival time `t` and one delay `dᵢ` per gate, with
//! box bounds `dᵢ ∈ [dᵢᵐⁱⁿ, dᵢᵐᵃˣ]`. A resolvent literal of phase 1
//! induces `t > Σ_{i∈π} dᵢ` (the TBF variable took its post-transition
//! value); phase 0 induces `t < Σ_{i∈π} dᵢ`.
//!
//! Strictness is handled per the paper's `t = b⁻` semantics: the reported
//! optimum is the **supremum** of the open feasible set. The supremum of a
//! nonempty open polyhedral set equals the maximum over its closure, so we
//! (1) certify the open set is nonempty with an ε-LP (`maximize ε` with
//! every strict inequality slackened by `ε`), then (2) maximize `t` over
//! the closed relaxation. All arithmetic is exact rational.

use crate::problem::{LpProblem, Relation, VarId};
use crate::rational::Rat;
use crate::simplex::{solve, LpOutcome};

/// Outcome of a [`PathLp`] solve.
#[derive(Clone, Debug, PartialEq)]
pub enum PathLpOutcome {
    /// The strict system is feasible.
    Feasible {
        /// Supremum of `t` over the (open) feasible region, in the same
        /// fixed-point units as the delay bounds.
        t_sup: i64,
        /// A delay assignment attaining the supremum in the closed
        /// relaxation (witness for reporting; the open system approaches
        /// it arbitrarily closely).
        delays: Vec<i64>,
    },
    /// No delay assignment satisfies all strict path constraints.
    Infeasible,
}

#[derive(Clone, Debug)]
enum Sense {
    /// `t < Σ dᵢ` over the gate set.
    TLess(Vec<usize>),
    /// `t > Σ dᵢ` over the gate set.
    TGreater(Vec<usize>),
}

/// Builder for the paper's mixed-Boolean-LP relaxation at a fixed cube.
///
/// Delay bounds and the optional search window are `i64` fixed-point
/// values (the workspace convention is 10⁻⁴ time units per unit).
///
/// # Example
///
/// The §11 carry-bypass LP: `max t` with `t < g₀+g₅`,
/// `t < g₀+g₁+g₂+g₃+g₄+g₅`, `g₀ ∈ [2,20]`, `gᵢ ∈ [2,4]` — the optimum
/// is 24.
///
/// ```
/// use tbf_lp::{PathLp, PathLpOutcome};
/// let mut bounds = vec![(2, 20)];
/// bounds.extend(std::iter::repeat((2, 4)).take(5));
/// let mut lp = PathLp::new(&bounds);
/// lp.t_less_than(&[0, 5]);
/// lp.t_less_than(&[0, 1, 2, 3, 4, 5]);
/// match lp.solve() {
///     PathLpOutcome::Feasible { t_sup, .. } => assert_eq!(t_sup, 24),
///     PathLpOutcome::Infeasible => unreachable!(),
/// }
/// ```
#[derive(Clone, Debug)]
pub struct PathLp {
    bounds: Vec<(i64, i64)>,
    constraints: Vec<Sense>,
    t_window: Option<(i64, i64)>,
}

impl PathLp {
    /// Creates a program over gates with the given `(dmin, dmax)` bounds.
    ///
    /// # Panics
    ///
    /// Panics if some bound has `dmin > dmax` or `dmin < 0`.
    pub fn new(bounds: &[(i64, i64)]) -> PathLp {
        for &(lo, hi) in bounds {
            assert!(0 <= lo && lo <= hi, "invalid delay bound [{lo}, {hi}]");
        }
        PathLp {
            bounds: bounds.to_vec(),
            constraints: Vec::new(),
            t_window: None,
        }
    }

    /// Adds the strict constraint `t < Σ_{i∈gates} dᵢ`.
    ///
    /// # Panics
    ///
    /// Panics if a gate index is out of range.
    pub fn t_less_than(&mut self, gates: &[usize]) {
        self.check(gates);
        self.constraints.push(Sense::TLess(gates.to_vec()));
    }

    /// Adds the strict constraint `t > Σ_{i∈gates} dᵢ`.
    ///
    /// # Panics
    ///
    /// Panics if a gate index is out of range.
    pub fn t_greater_than(&mut self, gates: &[usize]) {
        self.check(gates);
        self.constraints.push(Sense::TGreater(gates.to_vec()));
    }

    /// Restricts the search to `lo ≤ t ≤ hi` (the current breakpoint
    /// interval of the delay search).
    pub fn set_t_window(&mut self, lo: i64, hi: i64) {
        self.t_window = Some((lo, hi));
    }

    fn check(&self, gates: &[usize]) {
        for &g in gates {
            assert!(g < self.bounds.len(), "gate index {g} out of range");
        }
    }

    fn build(&self, eps_mode: bool) -> (LpProblem<Rat>, VarId, Vec<VarId>, Option<VarId>) {
        self.build_with_floor(eps_mode, None)
    }

    fn build_with_floor(
        &self,
        eps_mode: bool,
        t_floor: Option<i64>,
    ) -> (LpProblem<Rat>, VarId, Vec<VarId>, Option<VarId>) {
        let mut p: LpProblem<Rat> = LpProblem::new();
        let (tlo, thi) = self
            .t_window
            .map(|(a, b)| (Some(Rat::from(a)), Some(Rat::from(b))))
            .unwrap_or((Some(Rat::ZERO), None));
        let tlo = match (tlo, t_floor) {
            (Some(lo), Some(fl)) => Some(if Rat::from(fl) > lo {
                Rat::from(fl)
            } else {
                lo
            }),
            (None, Some(fl)) => Some(Rat::from(fl)),
            (lo, None) => lo,
        };
        let t = p.add_var(tlo, thi);
        let ds: Vec<VarId> = self
            .bounds
            .iter()
            .map(|&(lo, hi)| p.add_var(Some(Rat::from(lo)), Some(Rat::from(hi))))
            .collect();
        let eps = if eps_mode {
            // ε bounded above so the ε-LP is never unbounded.
            Some(p.add_var(Some(Rat::ZERO), Some(Rat::ONE)))
        } else {
            None
        };
        if let Some(e) = eps {
            p.set_objective(e, Rat::ONE);
        } else {
            p.set_objective(t, Rat::ONE);
        }
        for c in &self.constraints {
            let (gates, sign) = match c {
                Sense::TLess(g) => (g, Rat::ONE),
                Sense::TGreater(g) => (g, -Rat::ONE),
            };
            // sign=+1: t − Σd (+ ε) ≤ 0 ; sign=−1: −t + Σd (+ ε) ≤ 0.
            let mut terms = vec![(t, sign)];
            for &g in gates {
                terms.push((ds[g], -sign));
            }
            if let Some(e) = eps {
                terms.push((e, Rat::ONE));
            }
            p.add_constraint(terms, Relation::Le, Rat::ZERO);
        }
        (p, t, ds, eps)
    }

    /// Finds a strictly interior point with `t ≥ t_floor`: every strict
    /// constraint is satisfied with positive slack (before rounding to
    /// the fixed-point grid).
    ///
    /// Used for witness extraction: the returned `(t, delays)` induces a
    /// definite arrived/not-arrived valuation for every path constraint,
    /// consistent with the constraints added so far. Returns `None` when
    /// no interior point with `t ≥ t_floor` exists.
    pub fn solve_interior(&self, t_floor: i64) -> Option<(i64, Vec<i64>)> {
        if let Some((_, hi)) = self.t_window {
            if t_floor > hi {
                return None;
            }
        }
        let (p, t, ds, _) = self.build_with_floor(true, Some(t_floor));
        match solve(&p) {
            LpOutcome::Optimal { x, value } if value.is_positive() => {
                let t_val = x[t.index()].floor() as i64;
                let delays = ds.iter().map(|&d| x[d.index()].floor() as i64).collect();
                Some((t_val, delays))
            }
            _ => None,
        }
    }

    /// Solves the program.
    ///
    /// Returns [`PathLpOutcome::Infeasible`] when the *strict* system has
    /// no solution (even if the closed relaxation does), otherwise the
    /// supremum of `t` and a witness delay assignment.
    ///
    /// # Panics
    ///
    /// Panics if the supremum is not an integer multiple of the fixed-point
    /// unit *and* not representable — cannot happen: all data are integers,
    /// so the optimum of the closed LP is rational with denominator 1 after
    /// a vertex solution on this constraint structure is rounded; we
    /// `floor` to the fixed-point grid for safety.
    pub fn solve(&self) -> PathLpOutcome {
        // 1. Strict feasibility via the ε-LP.
        let (p_eps, _, _, _) = self.build(true);
        match solve(&p_eps) {
            LpOutcome::Optimal { value, .. } => {
                if !value.is_positive() {
                    return PathLpOutcome::Infeasible;
                }
            }
            LpOutcome::Infeasible => return PathLpOutcome::Infeasible,
            LpOutcome::Unbounded => unreachable!("ε is bounded above"),
        }
        // 2. Supremum of t over the closed relaxation.
        let (p, _t, ds, _) = self.build(false);
        match solve(&p) {
            LpOutcome::Optimal { x, value } => {
                let delays = ds.iter().map(|&d| x[d.index()].floor() as i64).collect();
                PathLpOutcome::Feasible {
                    t_sup: value.floor() as i64,
                    delays,
                }
            }
            LpOutcome::Infeasible => {
                unreachable!("closed relaxation of a strictly feasible system")
            }
            LpOutcome::Unbounded => {
                // No upper constraint on t and no window: the delay search
                // always supplies a window, but handle it deterministically.
                PathLpOutcome::Feasible {
                    t_sup: i64::MAX,
                    delays: self.bounds.iter().map(|&(_, hi)| hi).collect(),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example3_from_the_paper() {
        // Figure 4: t > d2, t < d1 + d2, d ∈ [1,2] → sup t = 4.
        let mut lp = PathLp::new(&[(1, 2), (1, 2)]);
        lp.t_greater_than(&[1]);
        lp.t_less_than(&[0, 1]);
        match lp.solve() {
            PathLpOutcome::Feasible { t_sup, delays } => {
                assert_eq!(t_sup, 4);
                assert_eq!(delays, vec![2, 2]);
            }
            PathLpOutcome::Infeasible => panic!("expected feasible"),
        }
    }

    #[test]
    fn example1_infeasible_sensitization() {
        // Figure 1: |P3| > |P1| and |P2| < |P1| with P1=buffer [4,5],
        // P2=inverter [1,2], P3=buffer [1,2]: t identifies |P1|.
        // t < d_P3 requires t < 2 but t > ... — model directly:
        // t = |P1| ∈ [4,5]; need |P3| > t and |P2| < t with |P3| ≤ 2:
        // infeasible.
        let mut lp = PathLp::new(&[(4, 5), (1, 2), (1, 2)]);
        lp.t_greater_than(&[0]); // t > |P1| would be >; use window instead
        lp.t_less_than(&[2]); // t < |P3| ≤ 2, but t > |P1| ≥ 4
        assert_eq!(lp.solve(), PathLpOutcome::Infeasible);
    }

    #[test]
    fn carry_bypass_lp_is_24() {
        let mut bounds = vec![(2, 20)];
        bounds.extend(std::iter::repeat_n((2, 4), 5));
        let mut lp = PathLp::new(&bounds);
        lp.t_less_than(&[0, 5]);
        lp.t_less_than(&[0, 1, 2, 3, 4, 5]);
        match lp.solve() {
            PathLpOutcome::Feasible { t_sup, .. } => assert_eq!(t_sup, 24),
            PathLpOutcome::Infeasible => panic!("expected feasible"),
        }
    }

    #[test]
    fn window_caps_the_supremum() {
        let mut lp = PathLp::new(&[(1, 10)]);
        lp.t_less_than(&[0]);
        lp.set_t_window(0, 7);
        match lp.solve() {
            PathLpOutcome::Feasible { t_sup, .. } => assert_eq!(t_sup, 7),
            PathLpOutcome::Infeasible => panic!("expected feasible"),
        }
    }

    #[test]
    fn contradictory_window_is_infeasible() {
        let mut lp = PathLp::new(&[(1, 2)]);
        lp.t_greater_than(&[0]); // t > d ≥ 1
        lp.set_t_window(0, 1); // but t ≤ 1 → strict system empty
        assert_eq!(lp.solve(), PathLpOutcome::Infeasible);
    }

    #[test]
    fn boundary_only_solution_is_infeasible_strictly() {
        // t > d1 and t < d1: closed relaxation has t = d1 but the strict
        // system is empty — the ε-LP must reject it.
        let mut lp = PathLp::new(&[(1, 2)]);
        lp.t_greater_than(&[0]);
        lp.t_less_than(&[0]);
        assert_eq!(lp.solve(), PathLpOutcome::Infeasible);
    }

    #[test]
    fn no_constraints_maximizes_window() {
        let mut lp = PathLp::new(&[(1, 2)]);
        lp.set_t_window(0, 100);
        match lp.solve() {
            PathLpOutcome::Feasible { t_sup, .. } => assert_eq!(t_sup, 100),
            PathLpOutcome::Infeasible => panic!("expected feasible"),
        }
    }

    #[test]
    fn greater_constraints_force_lower_bound_use() {
        // t > d1 + d2 with d ∈ [3,5] and window [0, 100]: sup t = 100
        // (t can exceed the sum freely). With an added t < d3 (d3 ∈ [9,9]):
        // need d1 + d2 < t < 9 → d1+d2 can sit at 6 < t → sup t = 9.
        let mut lp = PathLp::new(&[(3, 5), (3, 5), (9, 9)]);
        lp.t_greater_than(&[0, 1]);
        lp.t_less_than(&[2]);
        match lp.solve() {
            PathLpOutcome::Feasible { t_sup, delays } => {
                assert_eq!(t_sup, 9);
                assert_eq!(delays[2], 9);
            }
            PathLpOutcome::Infeasible => panic!("expected feasible"),
        }
    }

    #[test]
    fn fixed_delays_can_be_strictly_infeasible() {
        // d1 = d2 = 4 fixed; require t > d1 and t < d2: empty.
        let mut lp = PathLp::new(&[(4, 4), (4, 4)]);
        lp.t_greater_than(&[0]);
        lp.t_less_than(&[1]);
        assert_eq!(lp.solve(), PathLpOutcome::Infeasible);
    }

    #[test]
    fn variable_delays_make_it_feasible() {
        // Same but d ∈ [3,4]: t > d1, t < d2 feasible (d1=3, d2=4, t→4⁻).
        let mut lp = PathLp::new(&[(3, 4), (3, 4)]);
        lp.t_greater_than(&[0]);
        lp.t_less_than(&[1]);
        match lp.solve() {
            PathLpOutcome::Feasible { t_sup, .. } => assert_eq!(t_sup, 4),
            PathLpOutcome::Infeasible => panic!("expected feasible"),
        }
    }

    #[test]
    fn interior_point_strictly_satisfies() {
        // t > d1, t < d2, d ∈ [3,5]: sup t = 5; an interior point at
        // t ≥ sup−1 must satisfy both constraints strictly.
        let mut lp = PathLp::new(&[(3, 5), (3, 5)]);
        lp.t_greater_than(&[0]);
        lp.t_less_than(&[1]);
        let PathLpOutcome::Feasible { t_sup, .. } = lp.solve() else {
            panic!("feasible");
        };
        assert_eq!(t_sup, 5);
        let (t, d) = lp.solve_interior(t_sup - 1).expect("interior exists");
        assert!(t >= t_sup - 1);
        assert!(t > d[0], "t={t} must strictly exceed d1={}", d[0]);
        assert!(t < d[1], "t={t} must be strictly below d2={}", d[1]);
        assert!((3..=5).contains(&d[0]));
        assert!((3..=5).contains(&d[1]));
    }

    #[test]
    fn interior_point_respects_floor() {
        let mut lp = PathLp::new(&[(1, 10)]);
        lp.t_less_than(&[0]);
        lp.set_t_window(0, 9);
        // Floor above the window: no interior point.
        assert!(lp.solve_interior(50).is_none());
        // Floor inside: fine.
        let (t, _) = lp.solve_interior(5).expect("interior exists");
        assert!(t >= 5);
    }

    #[test]
    fn boundary_only_system_has_no_interior() {
        let mut lp = PathLp::new(&[(4, 4)]);
        lp.t_greater_than(&[0]);
        lp.t_less_than(&[0]);
        assert!(lp.solve_interior(0).is_none());
    }

    #[test]
    #[should_panic(expected = "invalid delay bound")]
    fn negative_bounds_panic() {
        let _ = PathLp::new(&[(-1, 2)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_gate_panics() {
        let mut lp = PathLp::new(&[(1, 2)]);
        lp.t_less_than(&[3]);
    }
}
