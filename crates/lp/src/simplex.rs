//! Dense two-phase simplex with Bland's anti-cycling rule, generic over
//! the scalar field.

use crate::field::LpField;
use crate::problem::{LpProblem, Relation};

/// The result of [`solve`].
#[derive(Clone, Debug, PartialEq)]
pub enum LpOutcome<F> {
    /// An optimal solution was found.
    Optimal {
        /// Optimal assignment of the problem's original variables.
        x: Vec<F>,
        /// Objective value at `x`.
        value: F,
    },
    /// No assignment satisfies all bounds and constraints.
    Infeasible,
    /// The objective is unbounded above over the feasible region.
    Unbounded,
}

/// How each original variable is mapped to nonnegative tableau columns.
#[derive(Clone, Copy, Debug)]
enum VarMap<F> {
    /// `x = x' + lo`, `x' ≥ 0`.
    Shifted { col: usize, lo: F },
    /// `x = hi − x'`, `x' ≥ 0` (no lower bound).
    Flipped { col: usize, hi: F },
    /// `x = x⁺ − x⁻`, both `≥ 0` (free variable).
    Free { pos: usize, neg: usize },
}

struct Tableau<F> {
    /// `m` constraint rows, each of length `n + 1` (last entry = rhs).
    rows: Vec<Vec<F>>,
    /// Reduced-cost row of length `n + 1` (last entry = −objective).
    cost: Vec<F>,
    /// Basic column of each row.
    basis: Vec<usize>,
    n: usize,
}

impl<F: LpField> Tableau<F> {
    fn pivot(&mut self, r: usize, c: usize) {
        let piv = self.rows[r][c];
        debug_assert!(!piv.is_zero());
        let inv = F::one() / piv;
        for x in self.rows[r].iter_mut() {
            *x = *x * inv;
        }
        let pivot_row = self.rows[r].clone();
        for (i, row) in self.rows.iter_mut().enumerate() {
            if i == r {
                continue;
            }
            let factor = row[c];
            if factor.is_zero() {
                continue;
            }
            for (x, &p) in row.iter_mut().zip(&pivot_row) {
                *x = *x - factor * p;
            }
        }
        let factor = self.cost[c];
        if !factor.is_zero() {
            for (x, &p) in self.cost.iter_mut().zip(&pivot_row) {
                *x = *x - factor * p;
            }
        }
        self.basis[r] = c;
    }

    /// Runs the simplex loop to optimality. Returns `false` on
    /// unboundedness. Bland's rule guarantees termination.
    fn optimize(&mut self) -> bool {
        loop {
            // Entering column: smallest index with positive reduced cost.
            let Some(c) = (0..self.n).find(|&j| self.cost[j].is_positive()) else {
                return true;
            };
            // Ratio test with Bland tie-breaking on basis index.
            let mut best: Option<(usize, F)> = None;
            for (i, row) in self.rows.iter().enumerate() {
                if !row[c].is_positive() {
                    continue;
                }
                let ratio = row[self.n] / row[c];
                match &best {
                    None => best = Some((i, ratio)),
                    Some((bi, br)) => {
                        // `!(ratio > *br)` (not `ratio <= *br`) keeps NaN
                        // ratios from stealing the pivot under f64.
                        #[allow(clippy::neg_cmp_op_on_partial_ord)]
                        if ratio < *br || (!(ratio > *br) && self.basis[i] < self.basis[*bi]) {
                            best = Some((i, ratio));
                        }
                    }
                }
            }
            match best {
                Some((r, _)) => self.pivot(r, c),
                None => return false, // unbounded
            }
        }
    }
}

/// Solves `problem` (maximization) with the two-phase simplex method.
///
/// Exact when instantiated at [`Rat`](crate::Rat); tolerance-based at
/// `f64`. Problems of the size arising in exact delay computation (tens of
/// variables) solve in microseconds.
///
/// # Example
///
/// ```
/// use tbf_lp::{LpProblem, Relation, solve, LpOutcome, Rat};
///
/// // maximize t  s.t.  t ≤ d, 1 ≤ d ≤ 2  — optimum t = 2.
/// let mut p: LpProblem<Rat> = LpProblem::new();
/// let t = p.add_var(Some(Rat::ZERO), None);
/// let d = p.add_var(Some(Rat::from_int(1)), Some(Rat::from_int(2)));
/// p.set_objective(t, Rat::ONE);
/// p.add_constraint(vec![(t, Rat::ONE), (d, -Rat::ONE)], Relation::Le, Rat::ZERO);
/// assert_eq!(
///     solve(&p),
///     LpOutcome::Optimal {
///         x: vec![Rat::from_int(2), Rat::from_int(2)],
///         value: Rat::from_int(2)
///     }
/// );
/// ```
pub fn solve<F: LpField>(problem: &LpProblem<F>) -> LpOutcome<F> {
    // --- Map original variables to nonnegative columns -------------------
    let mut maps: Vec<VarMap<F>> = Vec::with_capacity(problem.vars.len());
    let mut n_struct = 0usize;
    // Extra `x' ≤ hi − lo` rows for doubly bounded variables.
    let mut extra_upper: Vec<(usize, F)> = Vec::new();
    for def in &problem.vars {
        match (def.lower, def.upper) {
            (Some(lo), upper) => {
                let col = n_struct;
                n_struct += 1;
                maps.push(VarMap::Shifted { col, lo });
                if let Some(hi) = upper {
                    extra_upper.push((col, hi - lo));
                }
            }
            (None, Some(hi)) => {
                let col = n_struct;
                n_struct += 1;
                maps.push(VarMap::Flipped { col, hi });
            }
            (None, None) => {
                let pos = n_struct;
                let neg = n_struct + 1;
                n_struct += 2;
                maps.push(VarMap::Free { pos, neg });
            }
        }
    }

    // --- Express constraints over the substituted variables --------------
    // Each row: (coeffs over structural cols, relation, rhs).
    struct Row<F> {
        coeffs: Vec<F>,
        relation: Relation,
        rhs: F,
    }
    let mut rows: Vec<Row<F>> = Vec::new();
    for c in &problem.constraints {
        let mut coeffs = vec![F::zero(); n_struct];
        let mut rhs = c.rhs;
        for &(v, a) in &c.terms {
            match maps[v.0] {
                VarMap::Shifted { col, lo } => {
                    coeffs[col] = coeffs[col] + a;
                    rhs = rhs - a * lo;
                }
                VarMap::Flipped { col, hi } => {
                    coeffs[col] = coeffs[col] - a;
                    rhs = rhs - a * hi;
                }
                VarMap::Free { pos, neg } => {
                    coeffs[pos] = coeffs[pos] + a;
                    coeffs[neg] = coeffs[neg] - a;
                }
            }
        }
        rows.push(Row {
            coeffs,
            relation: c.relation,
            rhs,
        });
    }
    for &(col, ub) in &extra_upper {
        let mut coeffs = vec![F::zero(); n_struct];
        coeffs[col] = F::one();
        rows.push(Row {
            coeffs,
            relation: Relation::Le,
            rhs: ub,
        });
    }

    // --- Normalize rhs ≥ 0 and attach slack/artificial columns -----------
    let m = rows.len();
    let mut n_slack = 0usize;
    #[derive(Clone, Copy)]
    enum Aux {
        Slack(usize),
        SurplusArtificial(usize),
        ArtificialOnly,
    }
    let mut aux: Vec<Aux> = Vec::with_capacity(m);
    for row in rows.iter_mut() {
        if row.rhs.is_negative() {
            for x in row.coeffs.iter_mut() {
                *x = -*x;
            }
            row.rhs = -row.rhs;
            row.relation = match row.relation {
                Relation::Le => Relation::Ge,
                Relation::Ge => Relation::Le,
                Relation::Eq => Relation::Eq,
            };
        }
        match row.relation {
            Relation::Le => {
                aux.push(Aux::Slack(n_slack));
                n_slack += 1;
            }
            Relation::Ge => {
                aux.push(Aux::SurplusArtificial(n_slack));
                n_slack += 1;
            }
            Relation::Eq => aux.push(Aux::ArtificialOnly),
        }
    }
    let n_artificial = aux.iter().filter(|a| !matches!(a, Aux::Slack(_))).count();
    let n = n_struct + n_slack + n_artificial;

    let mut tab = Tableau {
        rows: Vec::with_capacity(m),
        cost: vec![F::zero(); n + 1],
        basis: vec![0; m],
        n,
    };
    let mut next_artificial = n_struct + n_slack;
    let mut artificial_cols = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        let mut r = vec![F::zero(); n + 1];
        r[..n_struct].copy_from_slice(&row.coeffs);
        r[n] = row.rhs;
        match aux[i] {
            Aux::Slack(s) => {
                r[n_struct + s] = F::one();
                tab.basis[i] = n_struct + s;
            }
            Aux::SurplusArtificial(s) => {
                r[n_struct + s] = -F::one();
                r[next_artificial] = F::one();
                tab.basis[i] = next_artificial;
                artificial_cols.push(next_artificial);
                next_artificial += 1;
            }
            Aux::ArtificialOnly => {
                r[next_artificial] = F::one();
                tab.basis[i] = next_artificial;
                artificial_cols.push(next_artificial);
                next_artificial += 1;
            }
        }
        tab.rows.push(r);
    }

    // --- Phase 1: drive artificials to zero ------------------------------
    if !artificial_cols.is_empty() {
        // maximize −Σ artificials  ⇒ cost = Σ (rows with artificial basis),
        // zeroed on artificial columns themselves.
        for j in 0..=n {
            let mut s = F::zero();
            for (i, row) in tab.rows.iter().enumerate() {
                if artificial_cols.contains(&tab.basis[i]) {
                    s = s + row[j];
                }
            }
            tab.cost[j] = s;
        }
        for &c in &artificial_cols {
            tab.cost[c] = F::zero();
        }
        let bounded = tab.optimize();
        debug_assert!(bounded, "phase-1 objective is bounded by construction");
        // Infeasible iff some artificial remains positive: the phase-1
        // objective value is −(cost rhs)... our cost rhs tracks Σ artificial.
        if tab.cost[n].is_positive() {
            return LpOutcome::Infeasible;
        }
        // Pivot any artificial still in the basis (at zero level) out.
        for i in 0..m {
            if artificial_cols.contains(&tab.basis[i]) {
                if let Some(c) = (0..n_struct + n_slack).find(|&j| !tab.rows[i][j].is_zero()) {
                    tab.pivot(i, c);
                }
                // Otherwise the row is all-zero: redundant, harmless.
            }
        }
        // Forbid artificials from re-entering.
        for row in tab.rows.iter_mut() {
            for &c in &artificial_cols {
                row[c] = F::zero();
            }
        }
    }

    // --- Phase 2: original objective --------------------------------------
    // Build reduced costs for the substituted objective.
    let mut cost = vec![F::zero(); n + 1];
    for (def, map) in problem.vars.iter().zip(&maps) {
        let c = def.objective;
        if c.is_zero() {
            continue;
        }
        match *map {
            VarMap::Shifted { col, .. } => {
                cost[col] = cost[col] + c;
            }
            VarMap::Flipped { col, .. } => {
                cost[col] = cost[col] - c;
            }
            VarMap::Free { pos, neg } => {
                cost[pos] = cost[pos] + c;
                cost[neg] = cost[neg] - c;
            }
        }
    }
    // Price out the current basis.
    tab.cost = cost;
    for i in 0..m {
        let b = tab.basis[i];
        let factor = tab.cost[b];
        if factor.is_zero() {
            continue;
        }
        let row = tab.rows[i].clone();
        for (x, &p) in tab.cost.iter_mut().zip(&row) {
            *x = *x - factor * p;
        }
    }
    if !tab.optimize() {
        return LpOutcome::Unbounded;
    }

    // --- Read out the solution -------------------------------------------
    let mut col_value = vec![F::zero(); n];
    for i in 0..m {
        col_value[tab.basis[i]] = tab.rows[i][n];
    }
    let mut x = Vec::with_capacity(problem.vars.len());
    for map in &maps {
        let v = match *map {
            VarMap::Shifted { col, lo } => col_value[col] + lo,
            VarMap::Flipped { col, hi } => hi - col_value[col],
            VarMap::Free { pos, neg } => col_value[pos] - col_value[neg],
        };
        x.push(v);
    }
    let value = problem.objective_value(&x);
    LpOutcome::Optimal { x, value }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rational::Rat;

    fn r(n: i128) -> Rat {
        Rat::from_int(n)
    }

    #[test]
    fn basic_max_f64() {
        // maximize 3x + 2y  s.t. x + y ≤ 4, x + 3y ≤ 6, x,y ≥ 0 → (4,0), 12
        let mut p: LpProblem<f64> = LpProblem::new();
        let x = p.add_var(Some(0.0), None);
        let y = p.add_var(Some(0.0), None);
        p.set_objective(x, 3.0);
        p.set_objective(y, 2.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
        p.add_constraint(vec![(x, 1.0), (y, 3.0)], Relation::Le, 6.0);
        match solve(&p) {
            LpOutcome::Optimal { x, value } => {
                assert!((value - 12.0).abs() < 1e-9);
                assert!((x[0] - 4.0).abs() < 1e-9);
                assert!(x[1].abs() < 1e-9);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn basic_max_rational() {
        let mut p: LpProblem<Rat> = LpProblem::new();
        let x = p.add_var(Some(Rat::ZERO), None);
        let y = p.add_var(Some(Rat::ZERO), None);
        p.set_objective(x, r(3));
        p.set_objective(y, r(5));
        p.add_constraint(vec![(x, r(1))], Relation::Le, r(4));
        p.add_constraint(vec![(y, r(2))], Relation::Le, r(12));
        p.add_constraint(vec![(x, r(3)), (y, r(2))], Relation::Le, r(18));
        // Classic problem: optimum 36 at (2, 6).
        match solve(&p) {
            LpOutcome::Optimal { x, value } => {
                assert_eq!(value, r(36));
                assert_eq!(x, vec![r(2), r(6)]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn infeasible_detected() {
        let mut p: LpProblem<Rat> = LpProblem::new();
        let x = p.add_var(Some(Rat::ZERO), Some(r(1)));
        p.add_constraint(vec![(x, r(1))], Relation::Ge, r(2));
        assert_eq!(solve(&p), LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut p: LpProblem<Rat> = LpProblem::new();
        let x = p.add_var(Some(Rat::ZERO), None);
        p.set_objective(x, r(1));
        assert_eq!(solve(&p), LpOutcome::Unbounded);
    }

    #[test]
    fn equality_constraints() {
        // maximize x + y s.t. x + y = 3, x − y = 1 → (2,1), 3
        let mut p: LpProblem<Rat> = LpProblem::new();
        let x = p.add_var(Some(Rat::ZERO), None);
        let y = p.add_var(Some(Rat::ZERO), None);
        p.set_objective(x, r(1));
        p.set_objective(y, r(1));
        p.add_constraint(vec![(x, r(1)), (y, r(1))], Relation::Eq, r(3));
        p.add_constraint(vec![(x, r(1)), (y, -r(1))], Relation::Eq, r(1));
        match solve(&p) {
            LpOutcome::Optimal { x, value } => {
                assert_eq!(value, r(3));
                assert_eq!(x, vec![r(2), r(1)]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn free_variables() {
        // maximize −x s.t. x ≥ −5 expressed via free var and constraint.
        let mut p: LpProblem<Rat> = LpProblem::new();
        let x = p.add_var(None, None);
        p.set_objective(x, -r(1));
        p.add_constraint(vec![(x, r(1))], Relation::Ge, -r(5));
        match solve(&p) {
            LpOutcome::Optimal { x, value } => {
                assert_eq!(value, r(5));
                assert_eq!(x, vec![-r(5)]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn upper_bounded_only_variable() {
        let mut p: LpProblem<Rat> = LpProblem::new();
        let x = p.add_var(None, Some(r(7)));
        p.set_objective(x, r(1));
        match solve(&p) {
            LpOutcome::Optimal { x, value } => {
                assert_eq!(value, r(7));
                assert_eq!(x, vec![r(7)]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn doubly_bounded_variables() {
        // maximize t s.t. t ≤ d1 + d2, d ∈ [1,2] → 4.
        let mut p: LpProblem<Rat> = LpProblem::new();
        let t = p.add_var(Some(Rat::ZERO), None);
        let d1 = p.add_var(Some(r(1)), Some(r(2)));
        let d2 = p.add_var(Some(r(1)), Some(r(2)));
        p.set_objective(t, r(1));
        p.add_constraint(
            vec![(t, r(1)), (d1, -r(1)), (d2, -r(1))],
            Relation::Le,
            Rat::ZERO,
        );
        match solve(&p) {
            LpOutcome::Optimal { value, .. } => assert_eq!(value, r(4)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn negative_rhs_rows() {
        // x − y ≤ −1 with x,y ∈ [0,3], maximize x → x=2 when y=3.
        let mut p: LpProblem<Rat> = LpProblem::new();
        let x = p.add_var(Some(Rat::ZERO), Some(r(3)));
        let y = p.add_var(Some(Rat::ZERO), Some(r(3)));
        p.set_objective(x, r(1));
        p.add_constraint(vec![(x, r(1)), (y, -r(1))], Relation::Le, -r(1));
        match solve(&p) {
            LpOutcome::Optimal { x, value } => {
                assert_eq!(value, r(2));
                assert_eq!(x[1], r(3));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Known cycling-prone structure; Bland's rule must terminate.
        let mut p: LpProblem<Rat> = LpProblem::new();
        let x1 = p.add_var(Some(Rat::ZERO), None);
        let x2 = p.add_var(Some(Rat::ZERO), None);
        let x3 = p.add_var(Some(Rat::ZERO), None);
        let x4 = p.add_var(Some(Rat::ZERO), None);
        p.set_objective(x1, Rat::new(3, 4));
        p.set_objective(x2, -r(150));
        p.set_objective(x3, Rat::new(1, 50));
        p.set_objective(x4, -r(6));
        p.add_constraint(
            vec![
                (x1, Rat::new(1, 4)),
                (x2, -r(60)),
                (x3, -Rat::new(1, 25)),
                (x4, r(9)),
            ],
            Relation::Le,
            Rat::ZERO,
        );
        p.add_constraint(
            vec![
                (x1, Rat::new(1, 2)),
                (x2, -r(90)),
                (x3, -Rat::new(1, 50)),
                (x4, r(3)),
            ],
            Relation::Le,
            Rat::ZERO,
        );
        p.add_constraint(vec![(x3, r(1))], Relation::Le, r(1));
        match solve(&p) {
            LpOutcome::Optimal { value, .. } => assert_eq!(value, Rat::new(1, 20)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn solution_is_always_feasible() {
        let mut p: LpProblem<Rat> = LpProblem::new();
        let t = p.add_var(Some(Rat::ZERO), Some(r(100)));
        let d1 = p.add_var(Some(r(9)), Some(r(10)));
        let d2 = p.add_var(Some(r(18)), Some(r(20)));
        p.set_objective(t, r(1));
        p.add_constraint(vec![(t, r(1)), (d1, -r(1))], Relation::Ge, Rat::ZERO);
        p.add_constraint(
            vec![(t, r(1)), (d1, -r(1)), (d2, -r(1))],
            Relation::Le,
            Rat::ZERO,
        );
        match solve(&p) {
            LpOutcome::Optimal { x, .. } => assert!(p.is_feasible(&x)),
            other => panic!("unexpected {other:?}"),
        }
    }
}
