//! The scalar-field abstraction shared by the `f64` and exact-rational
//! simplex instantiations.

use std::ops::{Add, Div, Mul, Neg, Sub};

use crate::rational::Rat;

/// An ordered field usable as the scalar type of the simplex tableau.
///
/// Implemented for `f64` (fast, approximate) and [`Rat`] (exact). The
/// delay algorithms use [`Rat`]; `f64` exists for benchmarking and for
/// callers with large well-conditioned problems.
pub trait LpField:
    Copy
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + std::fmt::Debug
{
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Conversion from a machine integer.
    fn from_i64(n: i64) -> Self;
    /// True if the value should be treated as zero (tolerance-aware for
    /// `f64`, exact for [`Rat`]).
    fn is_zero(self) -> bool;
    /// True if strictly positive beyond the zero tolerance.
    fn is_positive(self) -> bool;
    /// True if strictly negative beyond the zero tolerance.
    fn is_negative(self) -> bool;
    /// Nearest `f64`, for reporting.
    fn to_f64(self) -> f64;
}

impl LpField for f64 {
    fn zero() -> f64 {
        0.0
    }
    fn one() -> f64 {
        1.0
    }
    fn from_i64(n: i64) -> f64 {
        n as f64
    }
    fn is_zero(self) -> bool {
        self.abs() <= 1e-9
    }
    fn is_positive(self) -> bool {
        self > 1e-9
    }
    fn is_negative(self) -> bool {
        self < -1e-9
    }
    fn to_f64(self) -> f64 {
        self
    }
}

impl LpField for Rat {
    fn zero() -> Rat {
        Rat::ZERO
    }
    fn one() -> Rat {
        Rat::ONE
    }
    fn from_i64(n: i64) -> Rat {
        Rat::from(n)
    }
    fn is_zero(self) -> bool {
        Rat::is_zero(self)
    }
    fn is_positive(self) -> bool {
        Rat::is_positive(self)
    }
    fn is_negative(self) -> bool {
        Rat::is_negative(self)
    }
    fn to_f64(self) -> f64 {
        Rat::to_f64(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_field_tolerances() {
        assert!(<f64 as LpField>::is_zero(1e-12));
        assert!(!<f64 as LpField>::is_zero(1e-3));
        assert!(<f64 as LpField>::is_positive(0.5));
        assert!(<f64 as LpField>::is_negative(-0.5));
        assert!(!<f64 as LpField>::is_positive(1e-12));
    }

    #[test]
    fn rat_field_is_exact() {
        let tiny = Rat::new(1, i64::MAX as i128);
        assert!(!LpField::is_zero(tiny));
        assert!(LpField::is_positive(tiny));
        assert!(LpField::is_zero(Rat::ZERO));
        assert_eq!(<Rat as LpField>::from_i64(-3), Rat::from_int(-3));
    }
}
