//! Problem definition: variables with box bounds, linear constraints, and
//! a linear objective.

use crate::field::LpField;

/// Index of a decision variable inside an [`LpProblem`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Zero-based position of the variable in the problem.
    pub fn index(self) -> usize {
        self.0
    }
}

/// The sense of a linear constraint.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Relation {
    /// `Σ aᵢxᵢ ≤ b`
    Le,
    /// `Σ aᵢxᵢ ≥ b`
    Ge,
    /// `Σ aᵢxᵢ = b`
    Eq,
}

/// A linear constraint `Σ aᵢxᵢ (≤|≥|=) b`.
#[derive(Clone, Debug)]
pub struct Constraint<F> {
    pub(crate) terms: Vec<(VarId, F)>,
    pub(crate) relation: Relation,
    pub(crate) rhs: F,
}

impl<F: LpField> Constraint<F> {
    /// The linear terms of the constraint.
    pub fn terms(&self) -> &[(VarId, F)] {
        &self.terms
    }

    /// The constraint sense.
    pub fn relation(&self) -> Relation {
        self.relation
    }

    /// The right-hand side.
    pub fn rhs(&self) -> F {
        self.rhs
    }
}

#[derive(Clone, Debug)]
pub(crate) struct VarDef<F> {
    pub lower: Option<F>,
    pub upper: Option<F>,
    pub objective: F,
}

/// A maximization problem over box-bounded variables.
///
/// # Example
///
/// ```
/// use tbf_lp::{LpProblem, Relation, solve, LpOutcome};
///
/// // maximize x + y  s.t.  x + 2y ≤ 4, x ∈ [0,3], y ∈ [0,3]
/// let mut p: LpProblem<f64> = LpProblem::new();
/// let x = p.add_var(Some(0.0), Some(3.0));
/// let y = p.add_var(Some(0.0), Some(3.0));
/// p.set_objective(x, 1.0);
/// p.set_objective(y, 1.0);
/// p.add_constraint(vec![(x, 1.0), (y, 2.0)], Relation::Le, 4.0);
/// match solve(&p) {
///     LpOutcome::Optimal { value, .. } => assert!((value - 3.5).abs() < 1e-9),
///     other => panic!("unexpected outcome {other:?}"),
/// }
/// ```
#[derive(Clone, Debug)]
pub struct LpProblem<F> {
    pub(crate) vars: Vec<VarDef<F>>,
    pub(crate) constraints: Vec<Constraint<F>>,
}

impl<F: LpField> LpProblem<F> {
    /// Creates an empty problem.
    pub fn new() -> Self {
        LpProblem {
            vars: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Adds a variable with optional lower/upper bounds and zero objective
    /// coefficient.
    ///
    /// # Panics
    ///
    /// Panics if both bounds are given with `lower > upper`.
    pub fn add_var(&mut self, lower: Option<F>, upper: Option<F>) -> VarId {
        if let (Some(lo), Some(hi)) = (lower, upper) {
            // PartialOrd-only scalar: `!(lo > hi)` deliberately treats
            // incomparable (NaN) bounds as valid input for f64 callers.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            {
                assert!(!(lo > hi), "variable bounds inverted: {lo:?} > {hi:?}");
            }
        }
        self.vars.push(VarDef {
            lower,
            upper,
            objective: F::zero(),
        });
        VarId(self.vars.len() - 1)
    }

    /// Sets the objective coefficient of `v` (maximization).
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to this problem.
    pub fn set_objective(&mut self, v: VarId, coeff: F) {
        self.vars[v.0].objective = coeff;
    }

    /// Adds a linear constraint. Duplicate variables in `terms` are summed.
    ///
    /// # Panics
    ///
    /// Panics if a term references a variable not in this problem.
    pub fn add_constraint(&mut self, terms: Vec<(VarId, F)>, relation: Relation, rhs: F) {
        for &(v, _) in &terms {
            assert!(v.0 < self.vars.len(), "constraint references unknown var");
        }
        self.constraints.push(Constraint {
            terms,
            relation,
            rhs,
        });
    }

    /// Number of variables.
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    /// Number of explicit (non-bound) constraints.
    pub fn constraint_count(&self) -> usize {
        self.constraints.len()
    }

    /// The constraints added so far.
    pub fn constraints(&self) -> &[Constraint<F>] {
        &self.constraints
    }

    /// Evaluates the objective at a point.
    pub fn objective_value(&self, x: &[F]) -> F {
        let mut acc = F::zero();
        for (def, &xi) in self.vars.iter().zip(x) {
            acc = acc + def.objective * xi;
        }
        acc
    }

    /// Checks whether `x` satisfies every bound and constraint.
    pub fn is_feasible(&self, x: &[F]) -> bool {
        if x.len() != self.vars.len() {
            return false;
        }
        for (def, &xi) in self.vars.iter().zip(x) {
            if let Some(lo) = def.lower {
                if (lo - xi).is_positive() {
                    return false;
                }
            }
            if let Some(hi) = def.upper {
                if (xi - hi).is_positive() {
                    return false;
                }
            }
        }
        for c in &self.constraints {
            let mut lhs = F::zero();
            for &(v, a) in &c.terms {
                lhs = lhs + a * x[v.0];
            }
            let slack = c.rhs - lhs;
            let ok = match c.relation {
                Relation::Le => !slack.is_negative(),
                Relation::Ge => !slack.is_positive(),
                Relation::Eq => slack.is_zero(),
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

impl<F: LpField> Default for LpProblem<F> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_accessors() {
        let mut p: LpProblem<f64> = LpProblem::new();
        let x = p.add_var(Some(0.0), Some(1.0));
        let y = p.add_var(None, None);
        p.set_objective(x, 2.0);
        p.add_constraint(vec![(x, 1.0), (y, -1.0)], Relation::Eq, 0.0);
        assert_eq!(p.var_count(), 2);
        assert_eq!(p.constraint_count(), 1);
        assert_eq!(p.constraints()[0].relation(), Relation::Eq);
        assert_eq!(p.constraints()[0].rhs(), 0.0);
        assert_eq!(p.constraints()[0].terms().len(), 2);
        assert_eq!(x.index(), 0);
        assert_eq!(y.index(), 1);
    }

    #[test]
    fn feasibility_check() {
        let mut p: LpProblem<f64> = LpProblem::new();
        let x = p.add_var(Some(0.0), Some(2.0));
        let y = p.add_var(Some(0.0), None);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 3.0);
        assert!(p.is_feasible(&[1.0, 1.0]));
        assert!(!p.is_feasible(&[2.5, 0.0])); // violates x ≤ 2
        assert!(!p.is_feasible(&[2.0, 2.0])); // violates x+y ≤ 3
        assert!(!p.is_feasible(&[1.0])); // wrong arity
    }

    #[test]
    fn objective_value() {
        let mut p: LpProblem<f64> = LpProblem::new();
        let x = p.add_var(Some(0.0), None);
        let y = p.add_var(Some(0.0), None);
        p.set_objective(x, 3.0);
        p.set_objective(y, -1.0);
        assert_eq!(p.objective_value(&[2.0, 4.0]), 2.0);
    }

    #[test]
    #[should_panic(expected = "bounds inverted")]
    fn inverted_bounds_panic() {
        let mut p: LpProblem<f64> = LpProblem::new();
        let _ = p.add_var(Some(1.0), Some(0.0));
    }

    #[test]
    #[should_panic(expected = "unknown var")]
    fn foreign_var_panics() {
        let mut p: LpProblem<f64> = LpProblem::new();
        let _x = p.add_var(None, None);
        p.add_constraint(vec![(VarId(7), 1.0)], Relation::Le, 0.0);
    }
}
