//! Exact rational arithmetic over `i128`.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A rational number `num/den` in lowest terms with `den > 0`.
///
/// Used as the scalar field of the exact simplex so that pivoting is free
/// of floating-point drift. Delay values in this workspace are `i64`
/// fixed-point, far below the `i128` headroom; intermediate products are
/// reduced by GCD after every operation.
///
/// # Panics
///
/// Arithmetic panics on division by zero and on (astronomically unlikely
/// for timing-sized inputs) `i128` overflow, via the standard checked
/// operators in debug builds and wrapping UB-free semantics in release —
/// we use explicit `checked_*` and panic uniformly.
///
/// # Example
///
/// ```
/// use tbf_lp::Rat;
/// let a = Rat::new(1, 3);
/// let b = Rat::new(1, 6);
/// assert_eq!(a + b, Rat::new(1, 2));
/// assert!(a > b);
/// assert_eq!((a / b), Rat::from_int(2));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rat {
    num: i128,
    den: i128,
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rat {
    /// Zero.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    /// One.
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    /// Creates `num/den` reduced to lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Rat {
        assert!(den != 0, "rational with zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den).max(1);
        Rat {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// Creates the integer `n` as a rational.
    pub fn from_int(n: i128) -> Rat {
        Rat { num: n, den: 1 }
    }

    /// Numerator (after reduction, sign-carrying).
    pub fn numer(self) -> i128 {
        self.num
    }

    /// Denominator (after reduction, always positive).
    pub fn denom(self) -> i128 {
        self.den
    }

    /// True if exactly zero.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// True if strictly positive.
    pub fn is_positive(self) -> bool {
        self.num > 0
    }

    /// True if strictly negative.
    pub fn is_negative(self) -> bool {
        self.num < 0
    }

    /// Absolute value.
    pub fn abs(self) -> Rat {
        Rat {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero.
    pub fn recip(self) -> Rat {
        assert!(self.num != 0, "reciprocal of zero");
        Rat::new(self.den, self.num)
    }

    /// Nearest `f64` (for reporting only; never used in pivoting).
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Largest integer `≤ self`.
    pub fn floor(self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// Smallest integer `≥ self`.
    pub fn ceil(self) -> i128 {
        -(-self.num).div_euclid(self.den)
    }

    fn checked_bin(
        a: Rat,
        b: Rat,
        f: impl Fn(i128, i128, i128, i128) -> Option<(i128, i128)>,
    ) -> Rat {
        let (num, den) =
            f(a.num, a.den, b.num, b.den).expect("rational arithmetic overflow (i128)");
        Rat::new(num, den)
    }
}

impl Add for Rat {
    type Output = Rat;
    fn add(self, rhs: Rat) -> Rat {
        Rat::checked_bin(self, rhs, |an, ad, bn, bd| {
            let num = an.checked_mul(bd)?.checked_add(bn.checked_mul(ad)?)?;
            let den = ad.checked_mul(bd)?;
            Some((num, den))
        })
    }
}

impl Sub for Rat {
    type Output = Rat;
    fn sub(self, rhs: Rat) -> Rat {
        self + (-rhs)
    }
}

impl Mul for Rat {
    type Output = Rat;
    fn mul(self, rhs: Rat) -> Rat {
        // Cross-reduce first to keep magnitudes small.
        let g1 = gcd(self.num, rhs.den).max(1);
        let g2 = gcd(rhs.num, self.den).max(1);
        Rat::checked_bin(
            Rat {
                num: self.num / g1,
                den: self.den / g2,
            },
            Rat {
                num: rhs.num / g2,
                den: rhs.den / g1,
            },
            |an, ad, bn, bd| Some((an.checked_mul(bn)?, ad.checked_mul(bd)?)),
        )
    }
}

impl Div for Rat {
    type Output = Rat;
    #[allow(clippy::suspicious_arithmetic_impl)] // division = multiply by reciprocal
    fn div(self, rhs: Rat) -> Rat {
        self * rhs.recip()
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat {
            num: -self.num,
            den: self.den,
        }
    }
}

impl AddAssign for Rat {
    fn add_assign(&mut self, rhs: Rat) {
        *self = *self + rhs;
    }
}

impl SubAssign for Rat {
    fn sub_assign(&mut self, rhs: Rat) {
        *self = *self - rhs;
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Rat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Rat) -> Ordering {
        // den > 0 on both sides, so cross-multiplication preserves order.
        let lhs = self
            .num
            .checked_mul(other.den)
            .expect("rational comparison overflow");
        let rhs = other
            .num
            .checked_mul(self.den)
            .expect("rational comparison overflow");
        lhs.cmp(&rhs)
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl From<i64> for Rat {
    fn from(n: i64) -> Rat {
        Rat::from_int(n as i128)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_and_sign_normalization() {
        assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
        assert_eq!(Rat::new(-2, -4), Rat::new(1, 2));
        assert_eq!(Rat::new(2, -4), Rat::new(-1, 2));
        assert_eq!(Rat::new(0, -7), Rat::ZERO);
        assert!(Rat::new(1, -2).is_negative());
    }

    #[test]
    fn arithmetic() {
        let a = Rat::new(1, 2);
        let b = Rat::new(1, 3);
        assert_eq!(a + b, Rat::new(5, 6));
        assert_eq!(a - b, Rat::new(1, 6));
        assert_eq!(a * b, Rat::new(1, 6));
        assert_eq!(a / b, Rat::new(3, 2));
        assert_eq!(-a, Rat::new(-1, 2));
        let mut c = a;
        c += b;
        assert_eq!(c, Rat::new(5, 6));
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn ordering_is_exact() {
        assert!(Rat::new(1, 3) < Rat::new(34, 100));
        assert!(Rat::new(1, 3) > Rat::new(33, 100));
        assert_eq!(Rat::new(10, 30), Rat::new(1, 3));
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(Rat::new(7, 2).floor(), 3);
        assert_eq!(Rat::new(7, 2).ceil(), 4);
        assert_eq!(Rat::new(-7, 2).floor(), -4);
        assert_eq!(Rat::new(-7, 2).ceil(), -3);
        assert_eq!(Rat::from_int(5).floor(), 5);
        assert_eq!(Rat::from_int(5).ceil(), 5);
    }

    #[test]
    fn display() {
        assert_eq!(Rat::new(3, 1).to_string(), "3");
        assert_eq!(Rat::new(3, 7).to_string(), "3/7");
        assert_eq!(Rat::new(-3, 7).to_string(), "-3/7");
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rat::new(1, 0);
    }

    #[test]
    #[should_panic(expected = "reciprocal of zero")]
    fn zero_reciprocal_panics() {
        let _ = Rat::ZERO.recip();
    }

    #[test]
    fn to_f64_reporting() {
        assert!((Rat::new(1, 4).to_f64() - 0.25).abs() < 1e-12);
    }
}
