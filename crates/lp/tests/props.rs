//! Property tests: the exact simplex against random sampling oracles and
//! the `f64` instantiation.
//!
//! Cases come from a deterministic in-repo SplitMix64 stream (hermetic —
//! no external PRNG/property-test crates; inlined because `tbf-lp` sits
//! below `tbf-logic`).

use tbf_lp::{solve, LpOutcome, LpProblem, PathLp, PathLpOutcome, Rat, Relation};

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }

    fn in_range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.below((hi - lo) as u64) as i64
    }
}

/// A random path LP over `n` gates with integer bounds and a few random
/// path constraints.
#[derive(Clone, Debug)]
struct RandomPathLp {
    bounds: Vec<(i64, i64)>,
    less: Vec<Vec<usize>>,
    greater: Vec<Vec<usize>>,
    window_hi: i64,
}

fn gen_path_lp(rng: &mut Rng) -> RandomPathLp {
    let n = 2 + rng.below(4) as usize;
    let bounds = (0..n)
        .map(|_| {
            let lo = rng.in_range(1, 10);
            (lo, lo + 5)
        })
        .collect();
    let subset = |rng: &mut Rng| -> Vec<usize> {
        let len = 1 + rng.below(n as u64) as usize;
        let mut v: Vec<usize> = (0..len).map(|_| rng.below(n as u64) as usize).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let less = (0..rng.below(3)).map(|_| subset(rng)).collect();
    let greater = (0..rng.below(3)).map(|_| subset(rng)).collect();
    let window_hi = rng.in_range(20, 200);
    RandomPathLp {
        bounds,
        less,
        greater,
        window_hi,
    }
}

/// Best feasible `t` for a *fixed* delay assignment, or `None`.
fn best_t_for(d: &[i64], lp: &RandomPathLp) -> Option<i64> {
    let sum = |s: &[usize]| -> i64 { s.iter().map(|&i| d[i]).sum() };
    // t must satisfy: t < Σ_U d for all U; t > Σ_L d for all L; 0 ≤ t ≤ hi.
    let hi = lp
        .less
        .iter()
        .map(|s| sum(s))
        .chain(std::iter::once(lp.window_hi + 1))
        .min()
        .unwrap(); // t < hi (strict), except window which is ≤
    let lo = lp.greater.iter().map(|s| sum(s)).max().unwrap_or(-1);
    // Integer t strictly inside (lo, hi): sup over reals is hi (or window).
    if lo + 1 < hi {
        Some((hi - 1).min(lp.window_hi)) // a feasible integer point
    } else {
        None
    }
}

#[test]
fn path_lp_upper_bounds_every_sampled_point() {
    for case in 0..256u64 {
        let mut rng = Rng(case.wrapping_mul(0xA5A5A5A5).wrapping_add(0x11));
        let spec = gen_path_lp(&mut rng);
        let mut lp = PathLp::new(&spec.bounds);
        for s in &spec.less {
            lp.t_less_than(s);
        }
        for s in &spec.greater {
            lp.t_greater_than(s);
        }
        lp.set_t_window(0, spec.window_hi);
        let outcome = lp.solve();

        // Pseudo-random corner/interior samples of the delay box.
        let mut state = case.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut best_seen: Option<i64> = None;
        for _ in 0..64 {
            let d: Vec<i64> = spec
                .bounds
                .iter()
                .map(|&(lo, hi)| lo + (next() % (hi - lo + 1) as u64) as i64)
                .collect();
            if let Some(t) = best_t_for(&d, &spec) {
                best_seen = Some(best_seen.map_or(t, |b: i64| b.max(t)));
            }
        }
        match (outcome, best_seen) {
            (PathLpOutcome::Feasible { t_sup, .. }, Some(best)) => {
                // The exact supremum dominates every sampled feasible t.
                assert!(t_sup >= best, "t_sup {t_sup} < sampled {best}: {spec:?}");
            }
            (PathLpOutcome::Infeasible, Some(best)) => {
                panic!("LP infeasible but sample found t = {best}: {spec:?}");
            }
            _ => {} // feasible-but-unsampled or both infeasible: fine
        }
    }
}

#[test]
fn f64_and_rational_simplex_agree() {
    for case in 0..256u64 {
        let mut rng = Rng(case.wrapping_mul(0xC3C3C3C3).wrapping_add(0x22));
        let c: Vec<i64> = (0..3).map(|_| rng.in_range(-5, 6)).collect();
        let n_rows = 1 + rng.below(3);
        let rows: Vec<(Vec<i64>, i64)> = (0..n_rows)
            .map(|_| {
                (
                    (0..3).map(|_| rng.in_range(-4, 5)).collect(),
                    rng.in_range(0, 20),
                )
            })
            .collect();
        // maximize c·x over x ∈ [0,10]³ with rows a·x ≤ b.
        let mut pf: LpProblem<f64> = LpProblem::new();
        let mut pr: LpProblem<Rat> = LpProblem::new();
        let xf: Vec<_> = (0..3).map(|_| pf.add_var(Some(0.0), Some(10.0))).collect();
        let xr: Vec<_> = (0..3)
            .map(|_| pr.add_var(Some(Rat::ZERO), Some(Rat::from_int(10))))
            .collect();
        for i in 0..3 {
            pf.set_objective(xf[i], c[i] as f64);
            pr.set_objective(xr[i], Rat::from_int(c[i] as i128));
        }
        for (a, b) in &rows {
            pf.add_constraint(
                a.iter()
                    .enumerate()
                    .map(|(i, &ai)| (xf[i], ai as f64))
                    .collect(),
                Relation::Le,
                *b as f64,
            );
            pr.add_constraint(
                a.iter()
                    .enumerate()
                    .map(|(i, &ai)| (xr[i], Rat::from_int(ai as i128)))
                    .collect(),
                Relation::Le,
                Rat::from_int(*b as i128),
            );
        }
        match (solve(&pf), solve(&pr)) {
            (LpOutcome::Optimal { value: vf, .. }, LpOutcome::Optimal { value: vr, x }) => {
                assert!((vf - vr.to_f64()).abs() < 1e-6);
                assert!(pr.is_feasible(&x));
            }
            (LpOutcome::Infeasible, LpOutcome::Infeasible) => {}
            (LpOutcome::Unbounded, LpOutcome::Unbounded) => {}
            (a, b) => panic!("disagreement: f64 {a:?} vs rational {b:?}"),
        }
    }
}

#[test]
fn optimal_solutions_are_feasible() {
    for case in 0..256u64 {
        let mut rng = Rng(case.wrapping_mul(0x3C3C3C3C).wrapping_add(0x33));
        let n_rows = 1 + rng.below(4);
        let rows: Vec<(Vec<i64>, i64, usize)> = (0..n_rows)
            .map(|_| {
                (
                    (0..4).map(|_| rng.in_range(-4, 5)).collect(),
                    rng.in_range(-10, 20),
                    rng.below(3) as usize,
                )
            })
            .collect();
        // Mixed relations over x ∈ [0, 8]⁴, maximize Σx.
        let mut p: LpProblem<Rat> = LpProblem::new();
        let xs: Vec<_> = (0..4)
            .map(|_| p.add_var(Some(Rat::ZERO), Some(Rat::from_int(8))))
            .collect();
        for &x in &xs {
            p.set_objective(x, Rat::ONE);
        }
        for (a, b, rel) in &rows {
            let relation = match rel {
                0 => Relation::Le,
                1 => Relation::Ge,
                _ => Relation::Eq,
            };
            p.add_constraint(
                a.iter()
                    .enumerate()
                    .map(|(i, &ai)| (xs[i], Rat::from_int(ai as i128)))
                    .collect(),
                relation,
                Rat::from_int(*b as i128),
            );
        }
        if let LpOutcome::Optimal { x, value } = solve(&p) {
            assert!(p.is_feasible(&x));
            assert_eq!(p.objective_value(&x), value);
        }
    }
}
