//! End-to-end reproduction of every worked example in the paper
//! (UCB/ERL M93/6), run through the public API of the facade crate.

use tbf_suite::core::{
    floating_delay, lower_bounds, sequences_delay, topological_delay, two_vector_delay,
    DelayOptions, TbfExpr,
};
use tbf_suite::logic::generators::adders::paper_bypass_adder;
use tbf_suite::logic::generators::figures::{
    figure1_three_paths, figure4_example3, figure5_example4, figure6_glitch,
};
use tbf_suite::logic::paths::all_paths;
use tbf_suite::logic::{DelayBounds, Time};

fn t(x: i64) -> Time {
    Time::from_int(x)
}

fn opts() -> DelayOptions {
    DelayOptions::default()
}

/// §3 / Example 1 (Figure 1): the sensitization of P1 for a falling
/// transition induces |P3| > |P1| ∧ |P2| < |P1|, infeasible for the
/// figure's bounds — realizability must be checked with an LP.
#[test]
fn example1_falling_sensitization_is_infeasible() {
    use tbf_suite::lp::{PathLp, PathLpOutcome};
    let n = figure1_three_paths();
    let p1 = n.find("p1").unwrap();
    let p2 = n.find("p2").unwrap();
    let p3 = n.find("p3").unwrap();
    // LP variables: the three first-stage gates (the AND has zero delay).
    let bounds: Vec<(i64, i64)> = [p1, p2, p3]
        .iter()
        .map(|&g| {
            let d = n.node(g).delay();
            (d.min.scaled(), d.max.scaled())
        })
        .collect();
    // t identifies the arrival along P1: t > |P2| and t < |P3| with
    // t within [|P1|min, |P1|max] — encode |P1| = t via window.
    let mut lp = PathLp::new(&bounds);
    lp.t_greater_than(&[1]); // |P2| < t
    lp.t_less_than(&[2]); // t < |P3|
    lp.set_t_window(
        n.node(p1).delay().min.scaled(),
        n.node(p1).delay().max.scaled(),
    );
    assert_eq!(lp.solve(), PathLpOutcome::Infeasible);
}

/// §4 / Example 2 (Figure 2): the TBF `a(t−1) ⊕ b(t+1)` applied to
/// concrete waveforms.
#[test]
fn example2_tbf_waveform() {
    let f = TbfExpr::var(0, -t(1)).xor(TbfExpr::var(1, t(1)));
    // a: rising step at 0; b: pulse on [1, 4).
    let wave = |i: usize, time: Time| {
        if i == 0 {
            time >= Time::ZERO
        } else {
            time >= t(1) && time < t(4)
        }
    };
    // a(t−1) high from 1; b(t+1) high on [0, 3).
    assert!(f.eval_at(Time::from_units(0.5), &wave)); // 0 ⊕ 1
    assert!(!f.eval_at(Time::from_units(1.5), &wave)); // 1 ⊕ 1
    assert!(f.eval_at(Time::from_units(3.5), &wave)); // 1 ⊕ 0
}

/// §5 / Example 3 (Figure 4): the mixed Boolean LP semantics; the exact
/// 2-vector delay is 4 (equal to the topological length here).
#[test]
fn example3_delay_is_4() {
    let n = figure4_example3();
    let r = two_vector_delay(&n, &opts()).unwrap();
    assert_eq!(r.delay, t(4));
    assert_eq!(topological_delay(&n), t(4));
}

/// §7.1 / Example 4 (Figure 5): the path groups of the TBF network at
/// t = 2.8 (positive / negative / delay-dependent).
#[test]
fn example4_tbf_network_partition() {
    let n = figure5_example4();
    let out = n.find("g5").unwrap();
    let t28 = Time::from_units(2.8);
    let paths = all_paths(&n, out, 100).unwrap();
    let negative: Vec<_> = paths.iter().filter(|p| p.length_min(&n) >= t28).collect();
    let straddling: Vec<_> = paths.iter().filter(|p| p.straddles(&n, t28)).collect();
    assert_eq!(paths.len(), 5);
    assert_eq!(negative.len(), 1);
    assert_eq!(straddling.len(), 2);
    // The negative path is the 4-gate one through g1-g2-g3-g5.
    assert_eq!(negative[0].gates().len(), 4);
}

/// §8 / Example 5 (Figure 6): with fixed delays the sequences delay is 0
/// while the floating delay is 2; with variable delays they agree
/// (Theorems 1–2); the floating delay is invariant across gate delay
/// models (Theorem 4).
#[test]
fn example5_fixed_vs_variable_delays() {
    let fixed = figure6_glitch();
    assert_eq!(sequences_delay(&fixed, &opts()).unwrap().delay, Time::ZERO);
    assert_eq!(floating_delay(&fixed, &opts()).unwrap().delay, t(2));

    let variable = fixed.map_delays(|d| DelayBounds::new(d.max - Time::EPSILON, d.max));
    assert_eq!(sequences_delay(&variable, &opts()).unwrap().delay, t(2));
    assert_eq!(floating_delay(&variable, &opts()).unwrap().delay, t(2));
}

/// §11 (Figures 7–9): the 4-bit ripple-bypass adder. Topological length
/// 40; exact 2-vector carry delay 24.
#[test]
fn section11_bypass_adder() {
    let n = paper_bypass_adder();
    assert_eq!(topological_delay(&n), t(40));
    let r = two_vector_delay(&n, &opts()).unwrap();
    assert_eq!(r.delay, t(24));
    // §11 walks exactly two intervals: [24,40] then [20,24].
    assert!(r.stats.breakpoints_visited >= 2);
    assert!(r.stats.lps_solved >= 1);
}

/// §9 / Theorem 3: the sequences delay is invariant under every lower
/// bound (computed, not just asserted, across a spread of dmin choices).
#[test]
fn theorem3_lower_bound_invariance() {
    let base = paper_bypass_adder();
    let mut delays = Vec::new();
    for f in [0.0, 0.25, 0.5, 0.75, 0.95] {
        let n = base.map_delays(|d| DelayBounds::scaled_min(d.max, f));
        delays.push(sequences_delay(&n, &opts()).unwrap().delay);
    }
    assert!(
        delays.windows(2).all(|w| w[0] == w[1]),
        "sequences delay varied with dmin: {delays:?}"
    );
}

/// §10 / Theorem 5: below the precision threshold
/// `f* = D(C,[0,dmax],2)/L` the 2-vector delay is constant.
#[test]
fn theorem5_precision_threshold() {
    let n = paper_bypass_adder();
    let f_star = lower_bounds::precision_threshold(&n, &opts()).unwrap();
    assert!(
        (f_star - 0.6).abs() < 1e-9,
        "f* = 24/40 = 0.6, got {f_star}"
    );
    let sweep = lower_bounds::precision_sweep(&n, 11, &opts()).unwrap();
    let base = sweep[0].delay;
    for p in &sweep {
        if (p.fraction()) < f_star {
            assert_eq!(p.delay, base, "plateau broken at f = {}", p.fraction());
        }
        assert!(p.delay <= n.topological_delay());
        assert!(p.delay >= base);
    }
    // At f → 1 (fixed worst-case delays) the false path is still false:
    // the delay stays 24 even at f = 1 for this circuit (the bypass
    // covers the ripple path logically, not just temporally).
    let at_one = sweep.last().unwrap().delay;
    assert!(at_one >= base);
}

/// The three delay models order as the theory requires on every figure
/// circuit: `D(2) ≤ D(ω⁻) ≤ floating ≤ topological`.
#[test]
fn delay_model_ordering() {
    for n in [
        figure1_three_paths(),
        figure4_example3(),
        figure5_example4(),
        figure6_glitch(),
        paper_bypass_adder(),
    ] {
        let two = two_vector_delay(&n, &opts()).unwrap().delay;
        let seq = sequences_delay(&n, &opts()).unwrap().delay;
        let float = floating_delay(&n, &opts()).unwrap().delay;
        let topo = topological_delay(&n);
        assert!(two <= seq, "D(2)={two} > D(ω⁻)={seq}");
        assert!(seq <= float, "D(ω⁻)={seq} > floating={float}");
        assert!(float <= topo, "floating={float} > topological={topo}");
    }
}
