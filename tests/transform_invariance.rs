//! Exact delays must be invariant under the semantics- and
//! timing-preserving structural transformations.

use tbf_suite::core::{sequences_delay, two_vector_delay, DelayOptions};
use tbf_suite::logic::generators::adders::{carry_bypass, paper_bypass_adder};
use tbf_suite::logic::generators::figures::figure4_example3;
use tbf_suite::logic::generators::unit_ninety_percent;
use tbf_suite::logic::transform::{decompose_to_binary, extract_cone, strash, sweep};
use tbf_suite::logic::Time;

fn opts() -> DelayOptions {
    DelayOptions::default()
}

#[test]
fn decompose_preserves_exact_delays() {
    for n in [figure4_example3(), paper_bypass_adder()] {
        let base = two_vector_delay(&n, &opts()).unwrap().delay;
        let bin = decompose_to_binary(&n);
        let after = two_vector_delay(&bin, &opts()).unwrap().delay;
        assert_eq!(base, after, "decomposition changed the exact delay");
    }
}

#[test]
fn strash_preserves_exact_delays() {
    let n = carry_bypass(2, 2, unit_ninety_percent());
    let base = two_vector_delay(&n, &opts()).unwrap().delay;
    let hashed = strash(&n);
    let after = two_vector_delay(&hashed, &opts()).unwrap().delay;
    assert_eq!(base, after);
    let seq_base = sequences_delay(&n, &opts()).unwrap().delay;
    let seq_after = sequences_delay(&hashed, &opts()).unwrap().delay;
    assert_eq!(seq_base, seq_after);
}

#[test]
fn cone_extraction_matches_per_output_delay() {
    let n = paper_bypass_adder();
    let full = two_vector_delay(&n, &opts()).unwrap();
    let cone = extract_cone(&n, "cout");
    let cone_delay = two_vector_delay(&cone, &opts()).unwrap().delay;
    assert_eq!(full.output_delay("cout"), Some(cone_delay));
    assert_eq!(cone_delay, Time::from_int(24));
}

#[test]
fn sweep_preserves_exact_delays() {
    use tbf_suite::logic::generators::datapath::array_multiplier;
    use tbf_suite::logic::DelayBounds;
    let m = array_multiplier(
        2,
        DelayBounds::new(Time::from_units(0.9), Time::from_int(1)),
    );
    let base = two_vector_delay(&m, &opts()).unwrap().delay;
    let swept = sweep(&m);
    let after = two_vector_delay(&swept, &opts()).unwrap().delay;
    assert_eq!(base, after);
}
