//! Dynamic cross-validation: the event-driven simulator must never
//! observe a later last-output-transition than the exact delays computed
//! symbolically, and on small circuits the bound must be attained.

use tbf_suite::core::{sequences_delay, two_vector_delay, DelayOptions};
use tbf_suite::logic::generators::adders::paper_bypass_adder;
use tbf_suite::logic::generators::figures::{figure4_example3, figure6_glitch};
use tbf_suite::logic::generators::random::{random_dag, SplitMix64};
use tbf_suite::logic::generators::trees::parity_tree;
use tbf_suite::logic::{DelayBounds, Netlist, Time};
use tbf_suite::sim::{sample_delays, simulate, Stimulus, Waveform};

fn opts() -> DelayOptions {
    DelayOptions::default()
}

/// Monte-Carlo 2-vector check: random vector pairs × random delay
/// assignments never beat the exact bound; report the best observed.
fn mc_two_vector(netlist: &Netlist, trials: usize, seed: u64) -> Option<Time> {
    let mut rng = SplitMix64::new(seed);
    let n_in = netlist.inputs().len();
    let mut best: Option<Time> = None;
    for _ in 0..trials {
        let before: Vec<bool> = (0..n_in).map(|_| rng.coin()).collect();
        let after: Vec<bool> = (0..n_in).map(|_| rng.coin()).collect();
        let delays = sample_delays(netlist, || rng.next_u64());
        let stim = Stimulus::vector_pair(&before, &after);
        let r = simulate(netlist, &delays, &stim.waveforms(netlist));
        if let Some(t) = r.last_output_transition(netlist) {
            best = Some(best.map_or(t, |b: Time| b.max(t)));
        }
    }
    best
}

/// Monte-Carlo ω⁻ check with random pulse trains ending at t = 0.
fn mc_sequences(netlist: &Netlist, trials: usize, seed: u64) -> Option<Time> {
    let mut rng = SplitMix64::new(seed);
    let n_in = netlist.inputs().len();
    let mut best: Option<Time> = None;
    for _ in 0..trials {
        let mut waveforms = Vec::with_capacity(n_in);
        for _ in 0..n_in {
            let mut w = Waveform::constant(rng.coin());
            // A few random transitions at t ≤ 0.
            let k = rng.below(5);
            let mut times: Vec<i64> = (0..k).map(|_| -(rng.below(200_000) as i64)).collect();
            times.sort_unstable();
            times.dedup();
            for tt in times {
                let v: bool = rng.coin();
                w.record(Time::from_scaled(tt), v);
            }
            waveforms.push(w);
        }
        let delays = sample_delays(netlist, || rng.next_u64());
        let r = simulate(netlist, &delays, &waveforms);
        if let Some(t) = r.last_output_transition(netlist) {
            best = Some(best.map_or(t, |b: Time| b.max(t)));
        }
    }
    best
}

#[test]
fn simulation_never_exceeds_two_vector_bound() {
    for (name, n) in [
        ("fig4", figure4_example3()),
        ("fig6", figure6_glitch()),
        ("bypass", paper_bypass_adder()),
        (
            "parity",
            parity_tree(
                6,
                DelayBounds::new(Time::from_units(0.9), Time::from_int(1)),
            ),
        ),
        ("rand", random_dag(6, 30, 3, 0x5EED)),
    ] {
        let exact = two_vector_delay(&n, &opts()).unwrap().delay;
        if let Some(observed) = mc_two_vector(&n, 300, 42) {
            assert!(
                observed <= exact,
                "{name}: simulated {observed} beats exact 2-vector bound {exact}"
            );
        }
    }
}

#[test]
fn simulation_never_exceeds_sequences_bound() {
    for (name, n) in [
        ("fig4", figure4_example3()),
        ("fig6", figure6_glitch()),
        ("bypass", paper_bypass_adder()),
        ("rand", random_dag(6, 30, 3, 0xFACE)),
    ] {
        let exact = sequences_delay(&n, &opts()).unwrap().delay;
        if let Some(observed) = mc_sequences(&n, 300, 7) {
            assert!(
                observed <= exact,
                "{name}: simulated {observed} beats exact ω⁻ bound {exact}"
            );
        }
    }
}

#[test]
fn two_vector_bound_is_attained_on_figure4() {
    // Exhaustive over vector pairs, delays at the witness corner: the
    // exact bound 4 must be *achieved* (d1 = d2 = 2, a falls, b high).
    let n = figure4_example3();
    let exact = two_vector_delay(&n, &opts()).unwrap().delay;
    let mut best: Option<Time> = None;
    for pair in 0..16u8 {
        let before = [(pair & 1) != 0, (pair & 2) != 0];
        let after = [(pair & 4) != 0, (pair & 8) != 0];
        // Corner delay assignments: each gate at min or max.
        for corner in 0..4u8 {
            let delays: Vec<Time> = n
                .nodes()
                .map(|(id, node)| {
                    let bit = (corner >> (id.index() % 2)) & 1 == 1;
                    if bit {
                        node.delay().max
                    } else {
                        node.delay().min
                    }
                })
                .collect();
            let stim = Stimulus::vector_pair(&before, &after);
            let r = simulate(&n, &delays, &stim.waveforms(&n));
            if let Some(t) = r.last_output_transition(&n) {
                best = Some(best.map_or(t, |b: Time| b.max(t)));
            }
        }
    }
    assert_eq!(best, Some(exact), "bound not attained");
}

#[test]
fn bypass_adder_bound_attained_by_witness() {
    // The §11 witness: all propagates high (a=0101, b=1010), carry-in
    // rises, g0 at its max 20, mux at max 4 → output transitions at 24.
    let n = paper_bypass_adder();
    let exact = two_vector_delay(&n, &opts()).unwrap().delay;
    assert_eq!(exact, Time::from_int(24));

    let mut delays: Vec<Time> = n.nodes().map(|(_, node)| node.delay().max).collect();
    // Keep every gate at max: the bypass path c0→g0→g5 is 24 long.
    let _ = &mut delays;
    // Inputs: c0 0→1, aᵢ/bᵢ constant with all pᵢ = 1.
    let mut before = vec![false];
    let mut after = vec![true];
    for i in 0..4 {
        let a = i % 2 == 0;
        before.push(a);
        after.push(a);
    }
    for i in 0..4 {
        let b = i % 2 == 1;
        before.push(b);
        after.push(b);
    }
    let stim = Stimulus::vector_pair(&before, &after);
    let r = simulate(&n, &delays, &stim.waveforms(&n));
    assert_eq!(
        r.last_output_transition(&n),
        Some(Time::from_int(24)),
        "witness input must drive the output at exactly the exact delay"
    );
}

#[test]
fn topological_bound_never_exceeded_dynamically() {
    // Sanity net under the exact bounds: simulation ≤ topological too.
    let n = paper_bypass_adder();
    let topo = n.topological_delay();
    if let Some(obs) = mc_two_vector(&n, 500, 99) {
        assert!(obs <= topo);
    }
}

#[test]
fn figure6_fixed_delays_never_glitch_dynamically() {
    // The sequences delay of 0 is corroborated by simulation: no pulse
    // train can make the fixed-delay AND output move.
    let n = figure6_glitch();
    assert_eq!(mc_sequences(&n, 500, 1234), None);
}
