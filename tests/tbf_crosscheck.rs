//! Three-way semantic cross-check of the TBF formalism (paper §4): on
//! fixed-delay circuits, the symbolic TBF, the waveform algebra, and the
//! event-driven simulator must produce identical signals.

use tbf_suite::core::TbfExpr;
use tbf_suite::logic::generators::random::{random_dag, SplitMix64};
use tbf_suite::logic::{GateKind, Netlist, NodeId, Time};
use tbf_suite::sim::{max_delays, simulate, Waveform};

/// Composes the output waveform through the waveform algebra, gate by
/// gate (transport delays at each node's maximum = its fixed delay).
fn algebra_waveforms(netlist: &Netlist, inputs: &[Waveform]) -> Vec<Waveform> {
    let mut out: Vec<Waveform> = Vec::with_capacity(netlist.len());
    let mut pos = 0usize;
    for (_, node) in netlist.nodes() {
        let w = match node.kind() {
            GateKind::Input => {
                let w = inputs[pos].clone();
                pos += 1;
                w
            }
            GateKind::Const0 => Waveform::constant(false),
            GateKind::Const1 => Waveform::constant(true),
            kind => {
                let fanins: Vec<&Waveform> =
                    node.fanins().iter().map(|f| &out[f.index()]).collect();
                let combined = match kind {
                    GateKind::And => fanins
                        .iter()
                        .skip(1)
                        .fold(fanins[0].clone(), |acc, w| acc.and(w)),
                    GateKind::Or => fanins
                        .iter()
                        .skip(1)
                        .fold(fanins[0].clone(), |acc, w| acc.or(w)),
                    GateKind::Nand => fanins
                        .iter()
                        .skip(1)
                        .fold(fanins[0].clone(), |acc, w| acc.and(w))
                        .negate(),
                    GateKind::Nor => fanins
                        .iter()
                        .skip(1)
                        .fold(fanins[0].clone(), |acc, w| acc.or(w))
                        .negate(),
                    GateKind::Xor => fanins
                        .iter()
                        .skip(1)
                        .fold(fanins[0].clone(), |acc, w| acc.xor(w)),
                    GateKind::Xnor => fanins
                        .iter()
                        .skip(1)
                        .fold(fanins[0].clone(), |acc, w| acc.xor(w))
                        .negate(),
                    GateKind::Not => fanins[0].negate(),
                    GateKind::Buf => fanins[0].clone(),
                    GateKind::Maj => {
                        let ab = fanins[0].and(fanins[1]);
                        let ac = fanins[0].and(fanins[2]);
                        let bc = fanins[1].and(fanins[2]);
                        ab.or(&ac).or(&bc)
                    }
                    GateKind::Mux => {
                        let sel = fanins[0];
                        let d0 = sel.negate().and(fanins[1]);
                        let d1 = sel.and(fanins[2]);
                        d0.or(&d1)
                    }
                    GateKind::Input | GateKind::Const0 | GateKind::Const1 => {
                        unreachable!("handled above")
                    }
                };
                combined.delayed(node.delay().max)
            }
        };
        out.push(w);
    }
    out
}

fn random_train(rng: &mut SplitMix64) -> Waveform {
    let mut w = Waveform::constant(rng.coin());
    let mut times: Vec<i64> = (0..rng.below(6))
        .map(|_| rng.below(240_000) as i64 - 40_000)
        .collect();
    times.sort_unstable();
    times.dedup();
    for t in times {
        let v: bool = rng.coin();
        w.record(Time::from_scaled(t), v);
    }
    w
}

fn check_circuit(netlist: &Netlist, output: NodeId, seed: u64) {
    let mut rng = SplitMix64::new(seed);
    let fixed = netlist.map_delays(|d| tbf_suite::logic::DelayBounds::fixed(d.max));
    let inputs: Vec<Waveform> = (0..fixed.inputs().len())
        .map(|_| random_train(&mut rng))
        .collect();

    // 1. Event-driven simulation.
    let sim = simulate(&fixed, &max_delays(&fixed), &inputs);
    // 2. Waveform algebra.
    let algebra = algebra_waveforms(&fixed, &inputs);
    // 3. Symbolic TBF.
    let tbf = TbfExpr::of_netlist_node(&fixed, output);
    let wave_oracle = |i: usize, t: Time| inputs[i].value_at(t);

    // Sample densely around every transition of either signal.
    let mut sample_points: Vec<Time> = vec![Time::from_int(-10), Time::from_int(50)];
    for w in [&sim.waveform(output), &&algebra[output.index()]] {
        for &(t, _) in w.transitions() {
            sample_points.push(t - Time::EPSILON);
            sample_points.push(t);
            sample_points.push(t + Time::EPSILON);
        }
    }
    for &t in &sample_points {
        let by_sim = sim.waveform(output).value_at(t);
        let by_algebra = algebra[output.index()].value_at(t);
        let by_tbf = tbf.eval_at(t, &wave_oracle);
        assert_eq!(by_sim, by_algebra, "sim vs algebra at {t} (seed {seed})");
        assert_eq!(by_sim, by_tbf, "sim vs TBF at {t} (seed {seed})");
    }
}

#[test]
fn three_semantics_agree_on_random_circuits() {
    for seed in 0..24u64 {
        let n = random_dag(4, 12, 3, seed.wrapping_mul(0x9E37).wrapping_add(3));
        for &(_, out) in n.outputs() {
            check_circuit(&n, out, seed);
        }
    }
}

#[test]
fn three_semantics_agree_on_paper_circuits() {
    use tbf_suite::logic::generators::adders::paper_bypass_adder;
    use tbf_suite::logic::generators::figures::{figure4_example3, figure6_glitch};
    for (i, n) in [figure4_example3(), figure6_glitch(), paper_bypass_adder()]
        .iter()
        .enumerate()
    {
        for &(_, out) in n.outputs() {
            check_circuit(n, out, 1000 + i as u64);
        }
    }
}
