//! Suite-level invariants on ISCAS-style benchmark circuits (the §12
//! substitution set, at sizes that stay fast in debug builds — the full
//! table runs via `cargo run -p tbf-bench --release --bin table1`).

use tbf_suite::core::{sequences_delay, two_vector_delay, DelayOptions};
use tbf_suite::logic::generators::adders::{carry_bypass, carry_select, ripple_carry};
use tbf_suite::logic::generators::random::random_dag;
use tbf_suite::logic::generators::trees::{comparator, mux_tree, parity_tree};
use tbf_suite::logic::generators::unit_ninety_percent;
use tbf_suite::logic::parsers::bench::c17;
use tbf_suite::logic::parsers::mcnc_like_delays;
use tbf_suite::logic::{Netlist, Time};

fn suite() -> Vec<(&'static str, Netlist)> {
    let d = unit_ninety_percent();
    vec![
        ("c17", c17(mcnc_like_delays)),
        ("rca8", ripple_carry(8, d)),
        ("bypass4x2", carry_bypass(4, 2, d)),
        ("select2x2", carry_select(2, 2, d)),
        ("parity16", parity_tree(16, d)),
        ("muxtree3", mux_tree(3, d)),
        ("cmp8", comparator(8, d)),
    ]
}

#[test]
fn exact_delays_bounded_by_topology() {
    let opts = DelayOptions::default();
    for (name, n) in suite() {
        let two = two_vector_delay(&n, &opts)
            .unwrap_or_else(|e| panic!("{name}: {e}"))
            .delay;
        let seq = sequences_delay(&n, &opts)
            .unwrap_or_else(|e| panic!("{name}: {e}"))
            .delay;
        let topo = n.topological_delay();
        assert!(two <= seq, "{name}: D(2)={two} > D(ω⁻)={seq}");
        assert!(seq <= topo, "{name}: D(ω⁻)={seq} > L={topo}");
        assert!(two > Time::ZERO, "{name}: every suite circuit can switch");
    }
}

#[test]
fn random_dags_give_exact_answers_or_sound_bounds() {
    // Path-dense random DAGs may legitimately hit the resource caps (the
    // paper's own evaluation could not complete C6288); the contract is
    // a typed error carrying sound bounds, never a wrong "exact" value.
    let opts = DelayOptions::default();
    let n = random_dag(8, 60, 3, 0xC0FFEE);
    let topo = n.topological_delay();
    match two_vector_delay(&n, &opts) {
        Ok(r) => {
            assert!(r.delay <= topo);
            assert!(r.delay > Time::ZERO);
        }
        Err(e) => {
            let (lo, hi) = e.bounds().expect("cap errors carry bounds");
            assert!(lo <= hi, "bounds inverted: [{lo}, {hi}]");
            assert!(hi <= topo, "upper bound {hi} above topological {topo}");
        }
    }
}

#[test]
fn trees_have_no_false_paths() {
    let opts = DelayOptions::default();
    let d = unit_ninety_percent();
    for (name, n) in [
        ("parity16", parity_tree(16, d)),
        ("muxtree3", mux_tree(3, d)),
        ("cmp8", comparator(8, d)),
    ] {
        let r = two_vector_delay(&n, &opts).unwrap();
        assert_eq!(
            r.delay, r.topological,
            "{name}: trees must have zero false-path slack"
        );
    }
}

#[test]
fn bypass_adders_have_false_paths() {
    // The evaluation's headline shape: bypass/select adders lose a big
    // fraction of the topological delay once false paths are discharged.
    let opts = DelayOptions::default();
    let d = unit_ninety_percent();
    for blocks in [2usize, 3] {
        let n = carry_bypass(4, blocks, d);
        let r = two_vector_delay(&n, &opts).unwrap();
        assert!(
            r.delay < r.topological,
            "bypass 4x{blocks}: expected false-path slack, got none"
        );
    }
    // Slack grows with block count: each extra block adds a bypassable
    // ripple segment.
    let s2 = {
        let r = two_vector_delay(&carry_bypass(4, 2, d), &opts).unwrap();
        r.false_path_slack()
    };
    let s3 = {
        let r = two_vector_delay(&carry_bypass(4, 3, d), &opts).unwrap();
        r.false_path_slack()
    };
    assert!(s3 > s2, "slack should grow with blocks: {s2} vs {s3}");
}

#[test]
fn ripple_carry_critical_path_is_true() {
    // A plain ripple adder has no bypass: the carry chain is sensitizable
    // and the exact delay equals the topological one.
    let opts = DelayOptions::default();
    let n = ripple_carry(8, unit_ninety_percent());
    let r = two_vector_delay(&n, &opts).unwrap();
    assert_eq!(r.delay, r.topological);
}

#[test]
fn c17_exact_delays() {
    let opts = DelayOptions::default();
    let n = c17(mcnc_like_delays);
    let r = two_vector_delay(&n, &opts).unwrap();
    // Three NAND levels of MCNC-like 1.2-unit gates: L = 3.6; c17's
    // paths are all sensitizable.
    assert_eq!(r.topological, Time::from_units(3.6));
    assert_eq!(r.delay, r.topological);
}

#[test]
fn per_output_reports_are_complete() {
    let opts = DelayOptions::default();
    for (name, n) in suite() {
        let r = two_vector_delay(&n, &opts).unwrap();
        assert_eq!(
            r.outputs.len(),
            n.outputs().len(),
            "{name}: one entry per output"
        );
        let max = r.outputs.iter().map(|o| o.delay).max().unwrap();
        assert_eq!(
            r.delay, max,
            "{name}: circuit delay is the max over outputs"
        );
        for o in &r.outputs {
            assert!(o.delay <= o.topological, "{name}/{}", o.name);
        }
    }
}
