//! Workspace-level acceptance tests for the anytime analysis driver:
//! `analyze` must never fail on a well-formed netlist, and every
//! degraded result must carry sound bounds containing the exact delay
//! of the paper's worked examples.

use std::time::Duration;

use tbf_suite::core::{analyze, AnalysisPolicy, DelayOptions, DelayReport, OutputStatus};
use tbf_suite::logic::generators::adders::paper_bypass_adder;
use tbf_suite::logic::generators::figures::{figure1_three_paths, figure4_example3};
use tbf_suite::logic::{Netlist, Time};

fn t(x: i64) -> Time {
    Time::from_int(x)
}

/// The paper's ground truths: (circuit, exact 2-vector delay).
fn paper_examples() -> Vec<(Netlist, Time)> {
    vec![
        (figure1_three_paths(), t(5)),
        (figure4_example3(), t(4)),
        (paper_bypass_adder(), t(24)),
    ]
}

#[test]
fn unconstrained_analysis_is_exact_on_paper_examples() {
    for (n, exact) in paper_examples() {
        let r = analyze(&n, &AnalysisPolicy::default());
        assert_eq!(r.exact, Some(exact));
        assert!(r.all_exact());
        assert_eq!(r.lower, exact);
        assert_eq!(r.upper, exact);
    }
}

#[test]
fn starved_analysis_always_returns_containing_bounds() {
    // A grid of hostile budgets; whatever rung each cone lands on, the
    // driver must return normally with lower ≤ exact ≤ upper.
    let policies = [
        AnalysisPolicy::with_options(DelayOptions {
            max_straddling_paths: 1,
            ..DelayOptions::default()
        }),
        AnalysisPolicy::with_options(DelayOptions {
            max_bdd_nodes: 8,
            ..DelayOptions::default()
        }),
        AnalysisPolicy::with_options(DelayOptions {
            max_cubes: 1,
            ..DelayOptions::default()
        }),
        AnalysisPolicy::with_options(DelayOptions {
            max_breakpoints: 1,
            ..DelayOptions::default()
        }),
        AnalysisPolicy::with_options(DelayOptions {
            time_budget: Some(Duration::ZERO),
            ..DelayOptions::default()
        }),
        // Everything at once, and no retries to save it.
        AnalysisPolicy {
            options: DelayOptions {
                max_straddling_paths: 1,
                max_bdd_nodes: 8,
                max_cubes: 1,
                max_breakpoints: 1,
                ..DelayOptions::default()
            },
            max_retries: 0,
            ..AnalysisPolicy::default()
        },
    ];
    for (n, exact) in paper_examples() {
        for (i, policy) in policies.iter().enumerate() {
            let r = analyze(&n, policy);
            assert!(
                r.lower <= exact && exact <= r.upper,
                "policy #{i}: [{}, {}] excludes exact {exact}\n{r}",
                r.lower,
                r.upper
            );
            assert!(r.upper <= n.topological_delay());
        }
    }
}

#[test]
fn driver_agrees_with_the_direct_engines_when_unconstrained() {
    use tbf_suite::core::{sequences_delay, two_vector_delay};
    for (n, _) in paper_examples() {
        let direct: DelayReport = two_vector_delay(&n, &DelayOptions::default()).unwrap();
        let r = analyze(&n, &AnalysisPolicy::default());
        assert_eq!(r.exact, Some(direct.delay));
        // Per-output agreement, not just the circuit max.
        for o in &direct.outputs {
            let driven = r.outputs.iter().find(|d| d.name == o.name).unwrap();
            assert_eq!(driven.delay, o.delay, "{}", o.name);
            assert!(matches!(driven.status, OutputStatus::Exact));
        }
        // And the anytime upper bound can never beat the sequences
        // engine's own exact answer.
        let seq = sequences_delay(&n, &DelayOptions::default()).unwrap();
        assert!(r.upper <= seq.delay.max(direct.delay));
    }
}

#[test]
fn witness_survives_the_driver_path() {
    let r = analyze(&paper_bypass_adder(), &AnalysisPolicy::default());
    let w = r.witness.expect("exact nonzero delay must carry a witness");
    assert_eq!(w.before.len(), paper_bypass_adder().inputs().len());
    assert_eq!(w.after.len(), w.before.len());
}

/// Forced-fault acceptance (the `fault-injection` feature forwards to
/// `tbf-core`): under every injected failure the driver still returns,
/// with bounds containing the fault-free exact delay.
#[cfg(feature = "fault-injection")]
mod forced_faults {
    use super::*;
    use tbf_suite::core::fault::{with_plan, FaultPlan, Site};

    #[test]
    fn analyze_never_fails_under_forced_faults() {
        let sites = [
            Site::PathCollect,
            Site::BddOp,
            Site::CubeEnum,
            Site::Breakpoint,
            Site::ConeStart,
            Site::LpInterior,
            Site::XorSat,
        ];
        for (n, exact) in paper_examples() {
            for site in sites {
                let plan = (0..16).fold(FaultPlan::new(), |p, _| p.once(site));
                let r = with_plan(plan, || analyze(&n, &AnalysisPolicy::default()));
                assert!(
                    r.lower <= exact && exact <= r.upper,
                    "{site:?}: [{}, {}] excludes exact {exact}",
                    r.lower,
                    r.upper
                );
            }
        }
    }
}
